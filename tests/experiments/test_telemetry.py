"""Tests for the telemetry fabric: event log, profiler, CLI surface."""

import json
import time

import pytest

from repro.cli import main
from repro.experiments.layout import RunLayout
from repro.telemetry.events import (
    EVENT_TYPES,
    EventLog,
    EventLogError,
    filter_events,
    load_events,
    make_event,
    make_events_header,
    merge_events,
    render_event,
    unknown_event_types,
)
from repro.telemetry.profile import (
    NULL_PROFILER,
    PHASE_MAC,
    PHASE_PROTOCOL,
    PHASES,
    PROFILE_ENV,
    PhaseProfiler,
    aggregate_phase_profiles,
    make_profiler,
    profiling_enabled,
)


def _encode(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def _write_log(path, origin: str, records: list[dict]) -> None:
    """Hand-author an events file (controlled timestamps for merges)."""
    lines = [make_events_header(origin), *records]
    path.write_text("".join(_encode(r) for r in lines), encoding="utf-8")


class TestEventSchema:
    #: Representative payloads per type, mirroring what the supervisor
    #: and workers actually emit.
    PAYLOADS = {
        "run_start": {"shards": 2, "scheduler": "static", "total_tasks": 8},
        "run_end": {"outcome": "complete", "records": 8, "requeues": 0},
        "launch": {"pid": 4242, "to_run": 4},
        "exit": {"exit_code": 0, "outcome": "done", "recorded": 4},
        "stall": {"heartbeat_age_s": 12.5},
        "requeue": {"exit_code": -9, "recorded": 1, "remaining": 3},
        "steal": {"moved": 2, "to": 1, "victim_remaining": 2},
        "reclaim": {"moved": 2, "slot_kind": "workerless", "to": [1]},
        "chaos": {"action": "kill", "fired": True},
        "host_join": {"joined_mid_run": True},
        "host_lost": {"why": "vanished", "remaining": 1},
        "shard_summary": {"requeues": 1, "recorded": 4, "state": "done"},
        "heartbeat": {"reason": "task-done"},
        "adversary": {"specs": ["blackhole:0.2", "location_lying:0.3"]},
        "report": {
            "format": "markdown", "out": "report.md",
            "cells": 4, "records": 8,
        },
    }

    def test_payload_fixture_covers_every_type(self):
        assert set(self.PAYLOADS) == EVENT_TYPES

    def test_every_type_round_trips(self, tmp_path):
        """emit -> load preserves every field of every event type."""
        log = EventLog(tmp_path / "events.jsonl", origin="supervisor")
        emitted = {}
        for type_name in sorted(EVENT_TYPES):
            emitted[type_name] = log.emit(
                type_name,
                shard=1,
                host="p0",
                attempt=2,
                msg=f"human text for {type_name}",
                **self.PAYLOADS[type_name],
            )
        info = load_events(log.path)
        assert info.origin == "supervisor"
        assert info.quarantined == 0
        by_type = {r["type"]: r for r in info.records}
        assert set(by_type) == EVENT_TYPES
        for type_name, record in by_type.items():
            assert record == emitted[type_name]
            assert record["shard"] == 1
            assert record["host"] == "p0"
            assert record["attempt"] == 2
            assert record["payload"] == self.PAYLOADS[type_name]

    def test_identity_fields_default_to_null(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl", origin="shard0")
        log.emit("run_start")
        record = load_events(log.path).records[0]
        assert record["shard"] is None
        assert record["host"] is None
        assert record["attempt"] is None
        assert record["msg"] is None
        assert record["payload"] == {}

    def test_timestamps_are_real_numbers(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl", origin="shard0")
        before = time.time()
        log.emit("launch", shard=0)
        record = load_events(log.path).records[0]
        assert before <= record["t_wall"] <= time.time()
        assert record["t_mono"] > 0

    def test_bool_timestamps_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bad = make_event("launch", t_mono=True, t_wall=1.0)
        _write_log(path, "shard0", [bad])
        info = load_events(path, quarantine=False)
        assert info.records == []
        assert info.quarantined == 1

    def test_no_file_without_emit(self, tmp_path):
        EventLog(tmp_path / "events.jsonl", origin="supervisor")
        assert not (tmp_path / "events.jsonl").exists()

    def test_ensure_adopts_existing_file(self, tmp_path):
        """A merged file keeps its header when a resume re-opens it."""
        path = tmp_path / "events.jsonl"
        _write_log(path, "merged", [])
        log = EventLog(path, origin="supervisor").ensure()
        assert load_events(log.path).origin == "merged"


class TestQuarantine:
    def _torn_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = make_event("launch", t_mono=1.0, t_wall=10.0, shard=0)
        _write_log(path, "shard0", [good])
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "event", "type": "exi')
        return path, good

    def test_reader_leaves_torn_tail_in_place(self, tmp_path):
        """quarantine=False must not repair a possibly-live file."""
        path, good = self._torn_log(tmp_path)
        before = path.read_bytes()
        info = load_events(path, quarantine=False)
        assert info.records == [good]
        assert info.quarantined == 1
        assert path.read_bytes() == before
        assert not path.with_name("events.jsonl.quarantined").exists()

    def test_writer_repairs_and_keeps_raw_sidecar(self, tmp_path):
        path, good = self._torn_log(tmp_path)
        info = load_events(path, quarantine=True)
        assert info.records == [good]
        assert info.quarantined == 1
        sidecar = path.with_name("events.jsonl.quarantined")
        assert sidecar.read_text().startswith('{"kind": "event", "type"')
        repaired = load_events(path)
        assert repaired.quarantined == 0
        assert repaired.records == [good]

    def test_missing_header_is_an_error_not_damage(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(_encode(make_event("launch", t_mono=1.0, t_wall=1.0)))
        with pytest.raises(EventLogError, match="no valid header"):
            load_events(path, quarantine=False)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(EventLogError, match="cannot read"):
            load_events(tmp_path / "absent.jsonl")


class TestMerge:
    def _origins(self, tmp_path):
        """Two origin files whose second events tie on t_mono."""
        a = tmp_path / "events.jsonl"
        b = tmp_path / "shard1.events"
        _write_log(
            a,
            "supervisor",
            [
                make_event("run_start", t_mono=1.0, t_wall=10.0),
                make_event("launch", t_mono=2.0, t_wall=11.0, shard=0),
            ],
        )
        _write_log(
            b,
            "shard1",
            [
                make_event(
                    "heartbeat",
                    t_mono=2.0,
                    t_wall=11.0,
                    shard=1,
                    payload={"reason": "task-done"},
                ),
                make_event("exit", t_mono=3.0, t_wall=12.0, shard=1),
            ],
        )
        return a, b

    def test_merge_orders_by_mono_with_deterministic_ties(self, tmp_path):
        a, b = self._origins(tmp_path)
        out = tmp_path / "merged.jsonl"
        info = merge_events(out, [a, b])
        assert info.origin == "merged"
        assert [r["type"] for r in info.records] == [
            "run_start",
            "heartbeat",  # ties with launch at t_mono=2.0; encoded
            "launch",  # line "…heartbeat…" sorts before "…launch…"
            "exit",
        ]

    def test_merge_is_input_order_independent(self, tmp_path):
        a, b = self._origins(tmp_path)
        merge_events(tmp_path / "ab.jsonl", [a, b])
        merge_events(tmp_path / "ba.jsonl", [b, a])
        assert (tmp_path / "ab.jsonl").read_bytes() == (
            tmp_path / "ba.jsonl"
        ).read_bytes()

    def test_remerge_is_idempotent(self, tmp_path):
        """The supervisor re-merges into events.jsonl on every collect."""
        a, b = self._origins(tmp_path)
        merge_events(a, [a, b])
        first = a.read_bytes()
        merge_events(a, [a, b])
        assert a.read_bytes() == first

    def test_missing_inputs_are_skipped(self, tmp_path):
        a, _ = self._origins(tmp_path)
        info = merge_events(
            tmp_path / "m.jsonl", [a, tmp_path / "never-written.events"]
        )
        assert len(info.records) == 2

    def test_all_inputs_missing_raises(self, tmp_path):
        with pytest.raises(EventLogError, match="nothing to merge"):
            merge_events(tmp_path / "m.jsonl", [tmp_path / "nope.events"])


class TestFilterAndRender:
    RECORDS = [
        make_event("launch", t_mono=1.0, t_wall=100.0, shard=0),
        make_event("launch", t_mono=2.0, t_wall=200.0, shard=1),
        make_event("requeue", t_mono=3.0, t_wall=300.0, shard=0),
    ]

    def test_filter_by_type(self):
        assert len(filter_events(self.RECORDS, type="launch")) == 2

    def test_filter_by_shard(self):
        got = filter_events(self.RECORDS, shard=0)
        assert [r["type"] for r in got] == ["launch", "requeue"]

    def test_filter_by_since_wall(self):
        got = filter_events(self.RECORDS, since_wall=150.0)
        assert [r["t_wall"] for r in got] == [200.0, 300.0]

    def test_filters_compose(self):
        assert filter_events(self.RECORDS, type="launch", shard=0, since_wall=150.0) == []

    def test_unknown_event_types(self):
        rogue = make_event("warp_core_breach", t_mono=1.0, t_wall=1.0)
        assert unknown_event_types([*self.RECORDS, rogue]) == {
            "warp_core_breach"
        }
        assert unknown_event_types(self.RECORDS) == set()

    def test_render_event_shows_identity_and_msg(self):
        record = make_event(
            "requeue",
            t_mono=1.0,
            t_wall=100.0,
            shard=2,
            host="p1",
            attempt=3,
            msg="shard 2 died (exit -9); requeued",
        )
        line = render_event(record)
        assert "requeue" in line
        assert "[shard 2, host p1, attempt 3]" in line
        assert line.endswith(": shard 2 died (exit -9); requeued")

    def test_render_event_falls_back_to_payload(self):
        record = make_event(
            "heartbeat",
            t_mono=1.0,
            t_wall=100.0,
            shard=0,
            payload={"reason": "idle-wait"},
        )
        assert render_event(record).endswith(': {"reason": "idle-wait"}')


class TestThrottle:
    def test_throttle_suppresses_within_interval(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl", origin="shard0")
        first = log.emit_throttled(
            "hb:0:task-done", 60.0, "heartbeat", shard=0, reason="task-done"
        )
        second = log.emit_throttled(
            "hb:0:task-done", 60.0, "heartbeat", shard=0, reason="task-done"
        )
        assert first is not None
        assert second is None
        assert len(load_events(log.path).records) == 1

    def test_throttle_keys_are_independent(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl", origin="shard0")
        assert log.emit_throttled("hb:0:task-done", 60.0, "heartbeat")
        assert log.emit_throttled("hb:0:idle-wait", 60.0, "heartbeat")
        assert len(load_events(log.path).records) == 2

    def test_throttle_expires(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl", origin="shard0")
        assert log.emit_throttled("k", 0.0, "heartbeat")
        assert log.emit_throttled("k", 0.0, "heartbeat")


class TestPhaseProfiler:
    def test_snapshot_always_carries_every_phase(self):
        profiler = PhaseProfiler()
        t0 = profiler.start()
        profiler.add(PHASE_MAC, t0)
        snap = profiler.snapshot()
        assert set(snap) == set(PHASES)
        assert all(v >= 0.0 for v in snap.values())

    def test_exclusive_attribution_subtracts_child_time(self):
        """An outer phase is charged only its own time, not its child's."""
        profiler = PhaseProfiler()
        outer = profiler.start()
        inner = profiler.start()
        time.sleep(0.02)
        profiler.add(PHASE_MAC, inner)
        profiler.add(PHASE_PROTOCOL, outer)
        snap = profiler.snapshot()
        assert snap[PHASE_MAC] >= 0.02
        assert snap[PHASE_PROTOCOL] < snap[PHASE_MAC]

    def test_accumulates_across_calls(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            profiler.add(PHASE_MAC, profiler.start())
        assert profiler.snapshot()[PHASE_MAC] >= 0.0

    def test_null_profiler_is_inert(self):
        assert NULL_PROFILER.enabled is False
        assert NULL_PROFILER.start() == 0
        NULL_PROFILER.add(PHASE_MAC, 0)
        assert NULL_PROFILER.snapshot() == {}

    def test_env_gates_make_profiler(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert not profiling_enabled()
        assert make_profiler() is NULL_PROFILER
        monkeypatch.setenv(PROFILE_ENV, "0")
        assert make_profiler() is NULL_PROFILER
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert profiling_enabled()
        assert isinstance(make_profiler(), PhaseProfiler)

    def test_aggregate_sums_per_cell_and_skips_unprofiled(self):
        records = [
            {
                "scenario": "s/r=100",
                "protocol": "glr",
                "phase_profile": {"mac": 1.0, "mobility": 0.5},
            },
            {
                "scenario": "s/r=100",
                "protocol": "glr",
                "phase_profile": {"mac": 2.0},
            },
            {"scenario": "s/r=100", "protocol": "epidemic"},
        ]
        cells = aggregate_phase_profiles(records)
        assert set(cells) == {("s/r=100", "glr")}
        assert cells[("s/r=100", "glr")] == {
            "tasks": 2,
            "mac": 3.0,
            "mobility": 0.5,
        }


#: One tiny orchestrated run via the CLI, shared by the status/events
#: surface tests below (2 tasks, 2 shards; seconds of wall time).
@pytest.fixture(scope="module")
def cli_run_dir(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("telemetry-cli") / "run"
    code = main(
        [
            "campaign",
            "orchestrate",
            "--name",
            "telemetry-cli",
            "--radii",
            "100,150",
            "--node-counts",
            "10",
            "--protocols",
            "glr",
            "--replicates",
            "1",
            "--messages",
            "2",
            "--sim-time",
            "15",
            "--shards",
            "2",
            "--poll-interval",
            "0.05",
            "--dir",
            str(run_dir),
        ]
    )
    assert code == 0
    return run_dir


class TestStatusCli:
    def test_status_reports_coverage_and_shards(self, cli_run_dir, capsys):
        assert main(["campaign", "status", str(cli_run_dir)]) == 0
        out = capsys.readouterr().out
        assert "2/2 tasks recorded" in out
        assert "run complete (run_end recorded)" in out
        assert "shard 0" in out
        assert "last beat" in out

    def test_status_json_is_machine_readable(self, cli_run_dir, capsys):
        assert main(["campaign", "status", "--json", str(cli_run_dir)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["finished"] is True
        assert doc["tasks_done"] == 2
        assert doc["tasks_total"] == 2
        assert doc["events_origin"] == "merged"
        assert {row["shard"] for row in doc["shards"]} >= {0}
        assert doc["event_counts"].get("run_end") == 1

    def test_status_missing_dir_exits_2(self, tmp_path, capsys):
        assert main(["campaign", "status", str(tmp_path / "nope")]) == 2
        assert capsys.readouterr().err

    def test_status_does_not_repair_the_event_log(self, cli_run_dir):
        """The status reader must never quarantine a live writer's tail."""
        events = RunLayout(cli_run_dir).events
        with open(events, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "event", "ty')
        before = events.read_bytes()
        try:
            assert main(["campaign", "status", str(cli_run_dir)]) == 0
            assert events.read_bytes() == before
            assert not events.with_name(
                events.name + ".quarantined"
            ).exists()
        finally:
            events.write_bytes(before[: -len('{"kind": "event", "ty')])


class TestEventsCli:
    def test_events_renders_history(self, cli_run_dir, capsys):
        assert main(["campaign", "events", str(cli_run_dir)]) == 0
        out = capsys.readouterr().out
        assert "run_start" in out
        assert "launch" in out
        assert "run_end" in out

    def test_events_type_filter(self, cli_run_dir, capsys):
        code = main(
            ["campaign", "events", "--type", "launch", str(cli_run_dir)]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        assert all("launch" in line for line in lines)

    def test_events_shard_filter_and_json(self, cli_run_dir, capsys):
        code = main(
            ["campaign", "events", "--shard", "1", "--json", str(cli_run_dir)]
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert records
        assert all(r["shard"] == 1 for r in records)

    def test_events_rejects_unknown_type(self, cli_run_dir, capsys):
        with pytest.raises(SystemExit):  # argparse choices= rejects it
            main(["campaign", "events", "--type", "nonsense", str(cli_run_dir)])
        assert "--type" in capsys.readouterr().err

    def test_merged_log_validates_against_schema(self, cli_run_dir):
        """The ISSUE's acceptance check, as a test: one merged history."""
        info = load_events(RunLayout(cli_run_dir).events, quarantine=False)
        assert info.origin == "merged"
        assert unknown_event_types(info.records) == set()
        types = {r["type"] for r in info.records}
        assert {"run_start", "launch", "exit", "run_end"} <= types
