"""Tests for the CI perf-regression gate (benchmarks/compare_bench.py).

The gate's contract, verified by driving the script exactly as CI
does: no baseline skips cleanly, a small slowdown passes, a >15%
slowdown warns, a >30% slowdown fails the job (exit 1), and the
trajectory file accumulates per-commit datapoints into a trend table.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).parents[2] / "benchmarks" / "compare_bench.py"


def datapoint(tasks_per_s: float = 2.0, cold_wall_s: float = 10.0) -> dict:
    return {
        "benchmark": "campaign-engine",
        "cold_wall_s": cold_wall_s,
        "tasks_per_s": tasks_per_s,
        "stream_resume_s": 0.05,
        "cache_resume_s": 0.2,
        "orchestrated_wall_s": 12.0,
    }


def write(path: Path, report: dict) -> Path:
    path.write_text(json.dumps(report), encoding="utf-8")
    return path


def run_gate(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        timeout=60,
    )


class TestGate:
    def test_no_baseline_skips_cleanly(self, tmp_path):
        current = write(tmp_path / "current.json", datapoint())
        result = run_gate(
            "--current", str(current),
            "--baseline", str(tmp_path / "missing.json"),
        )
        assert result.returncode == 0
        assert "gate skipped" in result.stdout

    def test_small_slowdown_passes(self, tmp_path):
        current = write(tmp_path / "current.json", datapoint(2.0))
        baseline = write(tmp_path / "baseline.json", datapoint(2.1))
        result = run_gate(
            "--current", str(current), "--baseline", str(baseline)
        )
        assert result.returncode == 0
        assert "OK" in result.stdout
        assert "WARNING" not in result.stdout

    def test_improvement_passes(self, tmp_path):
        current = write(tmp_path / "current.json", datapoint(3.0))
        baseline = write(tmp_path / "baseline.json", datapoint(2.0))
        result = run_gate(
            "--current", str(current), "--baseline", str(baseline)
        )
        assert result.returncode == 0

    def test_injected_20_percent_slowdown_warns(self, tmp_path):
        current = write(tmp_path / "current.json", datapoint(2.0))
        baseline = write(tmp_path / "baseline.json", datapoint(2.5))
        result = run_gate(
            "--current", str(current), "--baseline", str(baseline)
        )
        assert result.returncode == 0  # warn does not fail the job
        assert "WARNING" in result.stdout
        assert "20.0%" in result.stdout

    def test_injected_40_percent_slowdown_fails(self, tmp_path):
        """The acceptance check: the gate demonstrably trips."""
        current = write(tmp_path / "current.json", datapoint(2.1))
        baseline = write(tmp_path / "baseline.json", datapoint(3.5))
        result = run_gate(
            "--current", str(current), "--baseline", str(baseline)
        )
        assert result.returncode == 1
        assert "FAIL" in result.stdout

    def test_thresholds_are_configurable(self, tmp_path):
        current = write(tmp_path / "current.json", datapoint(2.0))
        baseline = write(tmp_path / "baseline.json", datapoint(2.2))
        strict = run_gate(
            "--current", str(current), "--baseline", str(baseline),
            "--warn", "0.05", "--fail", "0.08",
        )
        assert strict.returncode == 1

    def test_before_after_table_rendered(self, tmp_path):
        current = write(tmp_path / "current.json", datapoint(2.0, 11.0))
        baseline = write(tmp_path / "baseline.json", datapoint(2.2, 10.0))
        result = run_gate(
            "--current", str(current), "--baseline", str(baseline)
        )
        assert "| metric | baseline | current | change |" in result.stdout
        assert "| cold wall (s) | 10.000 | 11.000 | +10.0% |" in result.stdout

    def test_table_markers_follow_an_overridden_warn_threshold(
        self, tmp_path
    ):
        # The ⚠ markers must track --warn, not a hardcoded 15%: with
        # --warn 0.05 a +10% cold-wall regression gets marked (and the
        # ~9% throughput drop trips the gate's WARNING verdict too, so
        # table and verdict agree).
        current = write(tmp_path / "current.json", datapoint(2.0, 11.0))
        baseline = write(tmp_path / "baseline.json", datapoint(2.2, 10.0))
        result = run_gate(
            "--current", str(current), "--baseline", str(baseline),
            "--warn", "0.05", "--fail", "0.5",
        )
        assert result.returncode == 0
        assert (
            "| cold wall (s) | 10.000 | 11.000 | +10.0% ⚠ |"
            in result.stdout
        )
        assert "WARNING" in result.stdout

    def test_summary_file_appended(self, tmp_path):
        current = write(tmp_path / "current.json", datapoint())
        summary = tmp_path / "summary.md"
        result = run_gate(
            "--current", str(current),
            "--baseline", str(tmp_path / "missing.json"),
            "--summary", str(summary),
        )
        assert result.returncode == 0
        assert "Campaign perf gate" in summary.read_text()

    def test_unreadable_current_exits_2(self, tmp_path):
        result = run_gate("--current", str(tmp_path / "missing.json"))
        assert result.returncode == 2


class TestTrajectory:
    def test_append_accumulates_per_commit_lines(self, tmp_path):
        trajectory = tmp_path / "BENCH_trajectory.jsonl"
        for i, sha in enumerate(("aaa111", "bbb222")):
            current = write(
                tmp_path / "current.json", datapoint(2.0 + i * 0.1)
            )
            result = run_gate(
                "--current", str(current),
                "--trajectory", str(trajectory), "--append",
                "--commit", sha,
            )
            assert result.returncode == 0
        lines = trajectory.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["commit"] == "aaa111"
        assert json.loads(lines[1])["tasks_per_s"] == 2.1

    def test_trend_table_shows_recent_commits(self, tmp_path):
        trajectory = tmp_path / "t.jsonl"
        current = write(tmp_path / "current.json", datapoint())
        for sha in ("aaa111", "bbb222", "ccc333"):
            run_gate(
                "--current", str(current),
                "--trajectory", str(trajectory), "--append",
                "--commit", sha,
            )
        result = run_gate(
            "--current", str(current),
            "--trajectory", str(trajectory),
            "--window", "2",
        )
        assert "Perf trajectory (last 2 commits)" in result.stdout
        assert "`bbb222`" in result.stdout and "`ccc333`" in result.stdout
        assert "`aaa111`" not in result.stdout

    def test_rerun_of_one_commit_keeps_latest_datapoint(self, tmp_path):
        trajectory = tmp_path / "t.jsonl"
        for value in (2.0, 9.0):
            current = write(tmp_path / "current.json", datapoint(value))
            run_gate(
                "--current", str(current),
                "--trajectory", str(trajectory), "--append",
                "--commit", "same-sha",
            )
        current = write(tmp_path / "current.json", datapoint())
        result = run_gate(
            "--current", str(current), "--trajectory", str(trajectory)
        )
        assert result.stdout.count("`same-sha`") == 1
        assert "9.000" in result.stdout

    def test_damaged_trajectory_lines_skipped(self, tmp_path):
        trajectory = tmp_path / "t.jsonl"
        trajectory.write_text(
            json.dumps({"commit": "good", "tasks_per_s": 2.0}) + "\n"
            "{ torn line\n"
        )
        current = write(tmp_path / "current.json", datapoint())
        result = run_gate(
            "--current", str(current), "--trajectory", str(trajectory)
        )
        assert result.returncode == 0
        assert "`good`" in result.stdout
