"""Tests for the run-directory layout authority.

The artifact names are frozen history: run dirs written by earlier
releases use exactly these strings and resume/watch read them back, so
every name here is pinned byte-for-byte — renaming one is a format
break, and this file is where that break gets caught.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.layout import RunLayout


class TestFrozenNames:
    def test_artifact_names_are_pinned(self):
        assert RunLayout.spec_name() == "spec.json"
        assert RunLayout.merged_name() == "campaign.jsonl"
        assert RunLayout.hosts_name() == "hosts.json"
        assert RunLayout.stream_name(0) == "shard0.jsonl"
        assert RunLayout.heartbeat_name(3) == "shard3.heartbeat"
        assert RunLayout.log_name(7) == "shard7.log"
        assert RunLayout.assignment_name(12) == "shard12.tasks.json"
        assert RunLayout.events_name() == "events.jsonl"
        assert RunLayout.shard_events_name(4) == "shard4.events"
        assert RunLayout.STREAM_GLOB == "shard*.jsonl"

    def test_paths_resolve_names_under_the_root(self, tmp_path):
        layout = RunLayout(tmp_path)
        assert layout.root == tmp_path
        assert layout.spec == tmp_path / "spec.json"
        assert layout.merged_stream == tmp_path / "campaign.jsonl"
        assert layout.hosts_file == tmp_path / "hosts.json"
        assert layout.stream(2) == tmp_path / "shard2.jsonl"
        assert layout.heartbeat(2) == tmp_path / "shard2.heartbeat"
        assert layout.log(2) == tmp_path / "shard2.log"
        assert layout.assignment(2) == tmp_path / "shard2.tasks.json"
        assert layout.events == tmp_path / "events.jsonl"
        assert layout.shard_events(2) == tmp_path / "shard2.events"

    def test_accepts_string_roots(self):
        layout = RunLayout("some/run")
        assert layout.stream(0) == Path("some/run/shard0.jsonl")


class TestShardStreams:
    def test_orders_numerically_not_lexicographically(self, tmp_path):
        layout = RunLayout(tmp_path)
        for index in (10, 2, 0, 1):
            layout.stream(index).write_text("x", encoding="utf-8")
        assert [path.name for path in layout.shard_streams()] == [
            "shard0.jsonl",
            "shard1.jsonl",
            "shard2.jsonl",
            "shard10.jsonl",
        ]

    def test_matches_only_shard_streams(self, tmp_path):
        layout = RunLayout(tmp_path)
        layout.stream(0).write_text("x", encoding="utf-8")
        # Neighbours that must NOT count as shard streams.
        for name in (
            "spec.json",
            "campaign.jsonl",
            "shard0.tasks.json",
            "shard0.heartbeat",
            "shard0.log",
            "shard0.jsonl.quarantined",
            f"shard0.jsonl.{12345}.tmp",
            "events.jsonl",
            "shard0.events",
        ):
            (tmp_path / name).write_text("x", encoding="utf-8")
        assert [path.name for path in layout.shard_streams()] == [
            "shard0.jsonl"
        ]

    def test_empty_dir_yields_nothing(self, tmp_path):
        assert RunLayout(tmp_path / "missing").shard_streams() == []


class TestEnsure:
    def test_creates_root_with_parents_and_chains(self, tmp_path):
        root = tmp_path / "a" / "b" / "run"
        layout = RunLayout(root).ensure()
        assert root.is_dir()
        assert layout.root == root
        # Idempotent.
        assert RunLayout(root).ensure().root == root
