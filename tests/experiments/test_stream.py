"""Tests for the JSONL metrics stream: appends, repair, and merging.

The failure modes that matter operationally: a campaign killed
mid-append leaves a torn tail (quarantined, never trusted); a merge of
shards from different specs is refused; overlapping shards dedupe by
task key.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.stream import (
    STREAM_FORMAT,
    StreamError,
    StreamTailCounter,
    StreamTailKeys,
    append_record,
    init_stream,
    load_stream,
    make_header,
    make_task_record,
    merge_streams,
    stream_task_count,
    union_records,
)

HASH_A = "a" * 64
HASH_B = "b" * 64


def metrics_json(value: float = 1.0) -> dict:
    """A complete, valid SimulationMetrics JSON payload."""
    return {
        "protocol": "glr",
        "duration": 30.0,
        "messages_created": 2,
        "messages_delivered": 1,
        "delivery_ratio": value,
        "average_latency": 5.0,
        "average_hops": 2.0,
        "max_peak_storage": 3,
        "average_peak_storage": 1.5,
        "time_average_storage": 0.8,
        "frames_sent": 10,
        "frames_delivered": 9,
        "frames_lost_collision": 0,
        "frames_lost_range": 1,
        "frames_dropped_queue": 0,
        "retries": 0,
        "data_bytes_sent": 1000,
        "control_bytes_sent": 200,
        "events_processed": 42,
        "per_node_peak_storage": {"0": 3},
        "latencies": [5.0],
        "hop_counts": [2],
    }


def record(key: str, scenario: str = "cell", protocol: str = "glr",
           replicate: int = 0, value: float = 1.0) -> dict:
    return make_task_record(
        key=key,
        scenario=scenario,
        protocol=protocol,
        replicate=replicate,
        seed=3,
        metrics_json=metrics_json(value),
        cached=False,
        wall_time_s=0.5,
    )


def new_stream(path, spec_hash=HASH_A, records=()):
    init_stream(path, spec_hash, {"name": "spec"})
    for rec in records:
        append_record(path, rec)
    return path


class TestInitAndAppend:
    def test_creates_header(self, tmp_path):
        path = tmp_path / "s.jsonl"
        info = init_stream(path, HASH_A, {"name": "spec"})
        assert info.spec_hash == HASH_A
        assert info.records == []
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "header"

    def test_append_and_load_round_trip(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl",
                          records=[record("k1"), record("k2", replicate=1)])
        info = load_stream(path)
        assert [r["key"] for r in info.records] == ["k1", "k2"]
        assert info.keys() == {"k1", "k2"}
        assert info.quarantined == 0

    def test_reopen_existing_stream_validates_hash(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl", records=[record("k1")])
        info = init_stream(path, HASH_A, {"name": "spec"})
        assert [r["key"] for r in info.records] == ["k1"]
        with pytest.raises(StreamError, match="refusing to mix"):
            init_stream(path, HASH_B, {"name": "other"})

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(StreamError, match="cannot read"):
            load_stream(tmp_path / "nope.jsonl")

    def test_load_wrong_hash_raises(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl")
        with pytest.raises(StreamError, match="refusing to mix"):
            load_stream(path, expected_spec_hash=HASH_B)

    def test_not_a_stream_raises(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"some": "json"}\n')
        with pytest.raises(StreamError, match="no valid header"):
            load_stream(path)

    def test_future_format_header_rejected(self, tmp_path):
        path = tmp_path / "s.jsonl"
        header = make_header(HASH_A, {"name": "spec"})
        header["format"] = STREAM_FORMAT + 1
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(StreamError, match="no valid header"):
            load_stream(path)


class TestQuarantine:
    def test_torn_tail_quarantined_on_resume(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl",
                          records=[record("k1"), record("k2")])
        # Simulate a crash mid-append: truncate the last line.
        text = path.read_text()
        path.write_text(text[:-20])
        info = load_stream(path)
        assert [r["key"] for r in info.records] == ["k1"]
        assert info.quarantined == 1
        sidecar = path.with_name(path.name + ".quarantined")
        assert sidecar.exists()
        assert '"k2"' in sidecar.read_text()
        # The stream itself was repaired in place: clean reload.
        again = load_stream(path)
        assert again.quarantined == 0
        assert [r["key"] for r in again.records] == ["k1"]

    def test_corrupt_middle_line_keeps_later_records(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl", records=[record("k1")])
        with open(path, "a") as handle:
            handle.write("{ not json !!!\n")
        append_record(path, record("k2"))
        info = load_stream(path)
        assert [r["key"] for r in info.records] == ["k1", "k2"]
        assert info.quarantined == 1

    def test_task_record_missing_fields_quarantined(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl", records=[record("k1")])
        with open(path, "a") as handle:
            handle.write(json.dumps({"kind": "task", "key": "k2"}) + "\n")
        info = load_stream(path)
        assert [r["key"] for r in info.records] == ["k1"]
        assert info.quarantined == 1

    def test_decodable_but_invalid_metrics_quarantined(self, tmp_path):
        # A record that parses as JSON but whose metrics payload the
        # aggregation would reject must count as damage here: trusting
        # its key on resume would skip the task forever while every
        # rebuild fails on it.
        path = new_stream(tmp_path / "s.jsonl", records=[record("k1")])
        bad = record("k2")
        bad["metrics"] = {"delivery_ratio": 1.0}  # wrong field set
        append_record(path, bad)
        info = load_stream(path)
        assert [r["key"] for r in info.records] == ["k1"]
        assert info.quarantined == 1
        # The writer's resume path sees only the valid record, so the
        # quarantined task recomputes.
        assert init_stream(path, HASH_A, {"name": "spec"}).keys() == {"k1"}

    def test_duplicate_header_line_quarantined(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl", records=[record("k1")])
        append_record(path, make_header(HASH_B, {"name": "other"}))
        info = load_stream(path)
        assert info.spec_hash == HASH_A  # the first header wins
        assert info.quarantined == 1

    def test_quarantine_false_leaves_file_untouched(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl", records=[record("k1")])
        with open(path, "a") as handle:
            handle.write("torn")
        before = path.read_text()
        info = load_stream(path, quarantine=False)
        assert info.quarantined == 1
        assert path.read_text() == before

    def test_resume_skips_only_surviving_records(self, tmp_path):
        """The operational contract: quarantined tasks rerun on resume."""
        path = new_stream(tmp_path / "s.jsonl",
                          records=[record("k1"), record("k2")])
        text = path.read_text()
        path.write_text(text[:-15])  # tear the k2 record
        info = init_stream(path, HASH_A, {"name": "spec"})
        assert info.keys() == {"k1"}


class TestMerge:
    def test_merges_disjoint_shards(self, tmp_path):
        s0 = new_stream(tmp_path / "s0.jsonl",
                        records=[record("k1"), record("k3", replicate=1)])
        s1 = new_stream(tmp_path / "s1.jsonl", records=[record("k2")])
        out = tmp_path / "merged.jsonl"
        info = merge_streams(out, [s0, s1])
        assert info.keys() == {"k1", "k2", "k3"}
        reloaded = load_stream(out, expected_spec_hash=HASH_A)
        assert reloaded.keys() == {"k1", "k2", "k3"}

    def test_refuses_mismatched_spec_hashes(self, tmp_path):
        s0 = new_stream(tmp_path / "s0.jsonl", records=[record("k1")])
        s1 = new_stream(
            tmp_path / "s1.jsonl", spec_hash=HASH_B, records=[record("k2")]
        )
        with pytest.raises(StreamError, match="same campaign spec"):
            merge_streams(tmp_path / "m.jsonl", [s0, s1])
        assert not (tmp_path / "m.jsonl").exists()

    def test_overlapping_shards_dedupe_by_key(self, tmp_path):
        shared = record("k1")
        s0 = new_stream(tmp_path / "s0.jsonl",
                        records=[shared, record("k2")])
        s1 = new_stream(tmp_path / "s1.jsonl",
                        records=[shared, record("k3")])
        info = merge_streams(tmp_path / "m.jsonl", [s0, s1])
        assert sorted(r["key"] for r in info.records) == ["k1", "k2", "k3"]

    def test_conflicting_duplicate_metrics_refused(self, tmp_path):
        s0 = new_stream(tmp_path / "s0.jsonl",
                        records=[record("k1", value=1.0)])
        s1 = new_stream(tmp_path / "s1.jsonl",
                        records=[record("k1", value=0.5)])
        with pytest.raises(StreamError, match="disagree"):
            merge_streams(tmp_path / "m.jsonl", [s0, s1])

    def test_merge_order_invariant_byte_identical(self, tmp_path):
        s0 = new_stream(tmp_path / "s0.jsonl",
                        records=[record("k2"), record("k1", replicate=1)])
        s1 = new_stream(tmp_path / "s1.jsonl", records=[record("k3")])
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        merge_streams(a, [s0, s1])
        merge_streams(b, [s1, s0])
        assert a.read_bytes() == b.read_bytes()

    def test_merge_order_invariant_across_provenance_fields(self, tmp_path):
        # The same task can legitimately appear with different
        # provenance: one shard simulated it (cached=False, real wall
        # time), another cache-resumed it (cached=True, 0.0).  Equal
        # metrics must dedupe to a canonical winner, not first-seen,
        # or merge output would depend on input order.
        fresh = record("k1")
        fresh["cached"] = False
        fresh["wall_time_s"] = 1.7
        resumed = record("k1")
        resumed["cached"] = True
        resumed["wall_time_s"] = 0.0
        s0 = new_stream(tmp_path / "s0.jsonl", records=[fresh])
        s1 = new_stream(tmp_path / "s1.jsonl", records=[resumed])
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        merge_streams(a, [s0, s1])
        merge_streams(b, [s1, s0])
        assert a.read_bytes() == b.read_bytes()

    def test_merge_never_mutates_inputs(self, tmp_path):
        # A shard stream may still be live (its campaign appending);
        # merge must read around a torn tail, not repair it away.
        s0 = new_stream(tmp_path / "s0.jsonl",
                        records=[record("k1"), record("k2")])
        with open(s0, "a") as handle:
            handle.write('{"kind": "task", "key": "k3", "in-fli')
        before = s0.read_bytes()
        info = merge_streams(tmp_path / "m.jsonl", [s0])
        assert info.keys() == {"k1", "k2"}
        assert s0.read_bytes() == before
        assert not (tmp_path / "s0.jsonl.quarantined").exists()
        # ... but the skipped line is reported, so callers can warn.
        assert info.quarantined == 1

    def test_merge_nothing_refused(self, tmp_path):
        with pytest.raises(StreamError, match="nothing to merge"):
            merge_streams(tmp_path / "m.jsonl", [])

    def test_merge_is_idempotent(self, tmp_path):
        s0 = new_stream(tmp_path / "s0.jsonl", records=[record("k1")])
        out = tmp_path / "m.jsonl"
        merge_streams(out, [s0])
        first = out.read_bytes()
        merge_streams(out, [s0, out])
        assert out.read_bytes() == first


class TestUnionRecords:
    """The in-memory half of merge, shared with the live watcher."""

    def test_union_equals_merge_records(self, tmp_path):
        s0 = new_stream(tmp_path / "s0.jsonl",
                        records=[record("k1"), record("k2", replicate=1)])
        s1 = new_stream(tmp_path / "s1.jsonl",
                        records=[record("k2", replicate=1), record("k3",
                                                                   replicate=2)])
        infos = [load_stream(s0, quarantine=False),
                 load_stream(s1, quarantine=False)]
        merged = merge_streams(tmp_path / "m.jsonl", [s0, s1])
        assert union_records(infos) == merged.records

    def test_union_refuses_mixed_specs(self, tmp_path):
        s0 = new_stream(tmp_path / "s0.jsonl", records=[record("k1")])
        s1 = new_stream(tmp_path / "s1.jsonl", spec_hash=HASH_B,
                        records=[record("k2")])
        infos = [load_stream(s0, quarantine=False),
                 load_stream(s1, quarantine=False)]
        with pytest.raises(StreamError, match="same campaign spec"):
            union_records(infos)

    def test_union_refuses_conflicting_metrics(self, tmp_path):
        s0 = new_stream(tmp_path / "s0.jsonl",
                        records=[record("k1", value=1.0)])
        s1 = new_stream(tmp_path / "s1.jsonl",
                        records=[record("k1", value=0.5)])
        infos = [load_stream(s0, quarantine=False),
                 load_stream(s1, quarantine=False)]
        with pytest.raises(StreamError, match="disagree"):
            union_records(infos)

    def test_union_of_nothing_refused(self):
        with pytest.raises(StreamError, match="nothing to union"):
            union_records([])


class TestStreamTaskCount:
    """The supervisor's cheap progress probe: complete lines only."""

    def test_counts_records_without_decoding(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl",
                          records=[record("k1"), record("k2", replicate=1)])
        assert stream_task_count(path) == 2

    def test_missing_and_header_only_count_zero(self, tmp_path):
        assert stream_task_count(tmp_path / "nope.jsonl") == 0
        assert stream_task_count(new_stream(tmp_path / "s.jsonl")) == 0

    def test_in_flight_tail_not_counted(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl", records=[record("k1")])
        with open(path, "a") as handle:
            handle.write('{"kind": "task", "key": "k2", "in-fli')
        assert stream_task_count(path) == 1


class TestStreamTailCounter:
    """Incremental polling: read only the appended suffix per tick."""

    def test_counts_incrementally(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl", records=[record("k1")])
        counter = StreamTailCounter(path)
        assert counter.count() == 1
        append_record(path, record("k2", replicate=1))
        append_record(path, record("k3", replicate=2))
        assert counter.count() == 3
        assert counter.count() == 3  # no growth, no change

    def test_matches_one_shot_count(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl")
        counter = StreamTailCounter(path)
        for index in range(5):
            append_record(path, record(f"k{index}", replicate=index))
            assert counter.count() == stream_task_count(path)

    def test_in_flight_tail_recounted_when_completed(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl", records=[record("k1")])
        counter = StreamTailCounter(path)
        with open(path, "a") as handle:
            handle.write('{"kind": "task", "key": "k2"')
        assert counter.count() == 1  # partial line not counted...
        with open(path, "a") as handle:
            handle.write("}\n")
        assert counter.count() == 2  # ...and not lost either

    def test_missing_file_counts_zero(self, tmp_path):
        counter = StreamTailCounter(tmp_path / "nope.jsonl")
        assert counter.count() == 0

    def test_rewritten_shorter_file_recounts(self, tmp_path):
        # A relaunched worker's resume can repair-and-rewrite the
        # stream (atomic replace); the counter must start over rather
        # than trust a stale offset.
        path = new_stream(tmp_path / "s.jsonl",
                          records=[record("k1"), record("k2", replicate=1)])
        counter = StreamTailCounter(path)
        assert counter.count() == 2
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:2]))  # header + first record
        assert counter.count() == 1


class TestStreamTailKeys:
    """Incremental key reader the stealing supervisor polls with."""

    def test_emits_keys_incrementally(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl", records=[record("k1")])
        tailer = StreamTailKeys(path)
        assert tailer.poll() == ["k1"]  # header line yields no key
        assert tailer.poll() == []
        append_record(path, record("k2", replicate=1))
        append_record(path, record("k3", replicate=2))
        assert tailer.poll() == ["k2", "k3"]

    def test_in_flight_tail_deferred_until_complete(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl", records=[record("k1")])
        tailer = StreamTailKeys(path)
        assert tailer.poll() == ["k1"]
        torn = json.dumps(record("k2", replicate=1))
        with open(path, "a") as handle:
            handle.write(torn[: len(torn) // 2])
        assert tailer.poll() == []  # half a line is not a record yet
        with open(path, "a") as handle:
            handle.write(torn[len(torn) // 2:] + "\n")
        assert tailer.poll() == ["k2"]

    def test_undecodable_complete_lines_skipped(self, tmp_path):
        path = new_stream(tmp_path / "s.jsonl", records=[record("k1")])
        with open(path, "a") as handle:
            handle.write("{ not json\n")
        append_record(path, record("k2", replicate=1))
        assert StreamTailKeys(path).poll() == ["k1", "k2"]

    def test_missing_file_polls_empty(self, tmp_path):
        assert StreamTailKeys(tmp_path / "nope.jsonl").poll() == []

    def test_rewritten_shorter_file_re_emits_from_scratch(self, tmp_path):
        path = new_stream(
            tmp_path / "s.jsonl",
            records=[record("k1"), record("k2", replicate=1)],
        )
        tailer = StreamTailKeys(path)
        assert tailer.poll() == ["k1", "k2"]
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:2]))  # header + first record
        # Re-emitted keys are fine: consumers keep keys in a set.
        assert tailer.poll() == ["k1"]
