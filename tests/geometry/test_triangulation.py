"""Tests for the Triangulation data structure."""

import pytest

from repro.geometry.primitives import Point
from repro.geometry.triangulation import (
    Triangulation,
    edges_of,
    normalize_edge,
    normalize_triangle,
)


@pytest.fixture
def square_tri() -> Triangulation:
    tri = Triangulation(
        points=[Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
    )
    tri.add_triangle(0, 1, 2)
    tri.add_triangle(0, 2, 3)
    return tri


class TestNormalization:
    def test_edge_sorted(self):
        assert normalize_edge(5, 2) == (2, 5)
        assert normalize_edge(2, 5) == (2, 5)

    def test_triangle_sorted(self):
        assert normalize_triangle(3, 1, 2) == (1, 2, 3)


class TestTriangulation:
    def test_add_triangle_normalizes(self, square_tri):
        assert (0, 1, 2) in square_tri.triangles

    def test_degenerate_triangle_rejected(self, square_tri):
        with pytest.raises(ValueError):
            square_tri.add_triangle(1, 1, 2)

    def test_edges(self, square_tri):
        assert square_tri.edges() == {
            (0, 1),
            (1, 2),
            (0, 2),
            (2, 3),
            (0, 3),
        }

    def test_has_edge(self, square_tri):
        assert square_tri.has_edge(2, 0)
        assert not square_tri.has_edge(1, 3)

    def test_neighbors(self, square_tri):
        assert square_tri.neighbors(0) == {1, 2, 3}
        assert square_tri.neighbors(1) == {0, 2}

    def test_neighbors_of_unused_vertex_empty(self):
        tri = Triangulation(points=[Point(0, 0)])
        assert tri.neighbors(0) == set()

    def test_triangles_with_edge(self, square_tri):
        shared = square_tri.triangles_with_edge(0, 2)
        assert len(shared) == 2
        boundary = square_tri.triangles_with_edge(0, 1)
        assert len(boundary) == 1

    def test_boundary_edges(self, square_tri):
        # The diagonal 0-2 is interior; the square sides are boundary.
        assert square_tri.boundary_edges() == {
            (0, 1),
            (1, 2),
            (2, 3),
            (0, 3),
        }

    def test_adjacency_covers_all_vertices(self, square_tri):
        adj = square_tri.adjacency()
        assert set(adj) == {0, 1, 2, 3}
        assert adj[3] == {0, 2}

    def test_iter_triangle_points(self, square_tri):
        triples = list(square_tri.iter_triangle_points())
        assert len(triples) == 2
        for a, b, c in triples:
            assert isinstance(a, Point)

    def test_vertex_count(self, square_tri):
        assert square_tri.vertex_count() == 4


class TestEdgesOf:
    def test_edges_of_triangles(self):
        assert edges_of([(0, 1, 2), (1, 2, 3)]) == {
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 3),
        }

    def test_edges_of_empty(self):
        assert edges_of([]) == set()
