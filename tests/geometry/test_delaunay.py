"""Tests for the from-scratch Delaunay triangulation.

The heavyweight correctness checks are (a) the empty-circumcircle
property on random inputs, (b) agreement with scipy.spatial.Delaunay as
an independent oracle, and (c) Euler-formula bookkeeping.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.delaunay import (
    delaunay_edges,
    delaunay_triangulation,
    is_delaunay,
    stretch_factor,
)
from repro.geometry.hull import convex_hull
from repro.geometry.primitives import Point
from repro.geometry.triangulation import normalize_edge

from tests.conftest import random_points


class TestBasicShapes:
    def test_triangle(self):
        tri = delaunay_triangulation(
            [Point(0, 0), Point(1, 0), Point(0, 1)]
        )
        assert tri.triangles == {(0, 1, 2)}

    def test_square_has_two_triangles(self):
        tri = delaunay_triangulation(
            [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        )
        assert len(tri.triangles) == 2
        assert len(tri.edges()) == 5

    def test_fewer_than_three_points(self):
        assert delaunay_triangulation([]).triangles == set()
        assert delaunay_triangulation([Point(0, 0)]).triangles == set()
        assert (
            delaunay_triangulation([Point(0, 0), Point(1, 1)]).triangles
            == set()
        )

    def test_collinear_points_have_no_triangles(self):
        pts = [Point(float(i), 0.0) for i in range(5)]
        assert delaunay_triangulation(pts).triangles == set()

    def test_duplicate_points_collapsed(self):
        tri = delaunay_triangulation(
            [Point(0, 0), Point(0, 0), Point(1, 0), Point(0, 1)]
        )
        assert tri.vertex_count() == 3
        assert len(tri.triangles) == 1

    def test_point_in_triangle_center_makes_three_triangles(self):
        pts = [Point(0, 0), Point(4, 0), Point(2, 3), Point(2, 1)]
        tri = delaunay_triangulation(pts)
        assert len(tri.triangles) == 3


class TestDelaunayProperty:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_empty_circumcircle_on_random_inputs(self, seed):
        pts = random_points(40, seed)
        tri = delaunay_triangulation(pts)
        assert is_delaunay(tri)

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_triangle_count_matches_euler(self, seed):
        # For points in general position: t = 2n - 2 - h triangles,
        # where h = hull vertices.
        pts = random_points(30, seed)
        tri = delaunay_triangulation(pts)
        h = len(convex_hull(pts))
        assert len(tri.triangles) == 2 * len(pts) - 2 - h

    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_edge_count_matches_euler(self, seed):
        pts = random_points(30, seed)
        tri = delaunay_triangulation(pts)
        h = len(convex_hull(pts))
        assert len(tri.edges()) == 3 * len(pts) - 3 - h

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_random_seeds(self, seed):
        pts = random_points(15, seed)
        tri = delaunay_triangulation(pts)
        assert is_delaunay(tri)


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", [31, 32, 33, 34])
    def test_edges_match_scipy(self, seed):
        scipy_spatial = pytest.importorskip("scipy.spatial")
        pts = random_points(50, seed)
        ours = delaunay_edges(pts)
        coords = [p.as_tuple() for p in pts]
        scipy_tri = scipy_spatial.Delaunay(coords)
        theirs = set()
        for simplex in scipy_tri.simplices:
            a, b, c = map(int, simplex)
            theirs.add(normalize_edge(a, b))
            theirs.add(normalize_edge(b, c))
            theirs.add(normalize_edge(a, c))
        assert ours == theirs


class TestDelaunayEdges:
    def test_collinear_fallback_is_a_path(self):
        pts = [Point(0, 0), Point(3, 0), Point(1, 0), Point(2, 0)]
        edges = delaunay_edges(pts)
        # Chain along the line: 0-2, 2-3, 3-1 in original indexing.
        assert edges == {(0, 2), (2, 3), (1, 3)}

    def test_single_point_no_edges(self):
        assert delaunay_edges([Point(0, 0)]) == set()

    def test_two_points_one_edge(self):
        assert delaunay_edges([Point(0, 0), Point(1, 0)]) == {(0, 1)}

    def test_duplicates_map_to_first_occurrence(self):
        pts = [Point(0, 0), Point(0, 0), Point(1, 0), Point(0, 1)]
        edges = delaunay_edges(pts)
        # Vertices {0, 2, 3} (index 1 duplicates 0).
        flattened = {i for e in edges for i in e}
        assert 1 not in flattened
        assert len(edges) == 3


class TestStretchFactor:
    def test_complete_triangle_has_stretch_one(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 1)]
        edges = {(0, 1), (0, 2), (1, 2)}
        assert stretch_factor(pts, edges) == pytest.approx(1.0)

    def test_path_graph_stretch(self):
        pts = [Point(0, 0), Point(2, 0), Point(1, 1)]
        detour = {(0, 2), (2, 1)}  # 0 -> 1 only via the top point
        # 0 -> 1 via 2: length 2*sqrt(2) over direct distance 2.
        assert stretch_factor(pts, detour) == pytest.approx(math.sqrt(2))
        # Adding the direct edge drops the stretch to 1.
        assert stretch_factor(pts, detour | {(0, 1)}) == pytest.approx(1.0)

    def test_disconnected_graph_infinite_stretch(self):
        pts = [Point(0, 0), Point(1, 0), Point(5, 5), Point(6, 5)]
        edges = {(0, 1), (2, 3)}
        assert math.isinf(stretch_factor(pts, edges))

    @pytest.mark.parametrize("seed", [41, 42])
    def test_delaunay_stretch_is_small(self, seed):
        # Keil & Gutwin: Delaunay stretch <= ~2.42; random instances
        # typically stay well under 2.
        pts = random_points(30, seed)
        edges = delaunay_edges(pts)
        assert stretch_factor(pts, edges) < 2.42
