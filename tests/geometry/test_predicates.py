"""Tests for repro.geometry.predicates."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.predicates import (
    Orientation,
    angle_at,
    circumcircle,
    in_circle,
    in_circle_any_orientation,
    orientation,
    point_in_triangle,
)
from repro.geometry.primitives import Point

coords = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestOrientation:
    def test_counterclockwise(self):
        assert (
            orientation(Point(0, 0), Point(1, 0), Point(0, 1))
            is Orientation.COUNTERCLOCKWISE
        )

    def test_clockwise(self):
        assert (
            orientation(Point(0, 0), Point(0, 1), Point(1, 0))
            is Orientation.CLOCKWISE
        )

    def test_collinear(self):
        assert (
            orientation(Point(0, 0), Point(1, 1), Point(2, 2))
            is Orientation.COLLINEAR
        )

    @given(points, points, points)
    def test_swap_flips_orientation(self, a, b, c):
        first = orientation(a, b, c)
        swapped = orientation(a, c, b)
        assert first == -swapped or (
            first is Orientation.COLLINEAR
            and swapped is Orientation.COLLINEAR
        )

    @given(points, points, points)
    def test_cyclic_rotation_preserves_orientation(self, a, b, c):
        assert orientation(a, b, c) == orientation(b, c, a)


class TestInCircle:
    def test_center_inside_unit_circumcircle(self):
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert in_circle(a, b, c, Point(0, 0.0))

    def test_far_point_outside(self):
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert not in_circle(a, b, c, Point(10, 10))

    def test_point_on_circle_not_strictly_inside(self):
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert not in_circle(a, b, c, Point(0, -1))

    def test_orientation_independent_variant(self):
        # Clockwise triangle, same circle.
        a, b, c = Point(1, 0), Point(0, 1), Point(-1, 0)
        assert in_circle_any_orientation(a, c, b, Point(0, 0))

    @given(points)
    def test_consistency_with_circumcircle(self, d):
        a, b, c = Point(0, 0), Point(10, 0), Point(0, 10)
        center, radius = circumcircle(a, b, c)
        inside_by_distance = center.distance_to(d) < radius * (1 - 1e-9)
        outside_by_distance = center.distance_to(d) > radius * (1 + 1e-9)
        result = in_circle_any_orientation(a, b, c, d)
        if inside_by_distance:
            assert result
        if outside_by_distance:
            assert not result


class TestCircumcircle:
    def test_right_triangle_circumcenter_is_hypotenuse_midpoint(self):
        center, radius = circumcircle(Point(0, 0), Point(2, 0), Point(0, 2))
        assert center.x == pytest.approx(1.0)
        assert center.y == pytest.approx(1.0)
        assert radius == pytest.approx(math.sqrt(2))

    def test_equilateral_triangle(self):
        h = math.sqrt(3)
        center, radius = circumcircle(Point(0, 0), Point(2, 0), Point(1, h))
        assert center.x == pytest.approx(1.0)
        assert radius == pytest.approx(2 / math.sqrt(3))

    def test_collinear_raises(self):
        with pytest.raises(ValueError):
            circumcircle(Point(0, 0), Point(1, 1), Point(2, 2))

    @given(points, points, points)
    def test_equidistance_property(self, a, b, c):
        try:
            center, radius = circumcircle(a, b, c)
        except ValueError:
            return  # collinear input
        for p in (a, b, c):
            assert center.distance_to(p) == pytest.approx(
                radius, rel=1e-6, abs=1e-6
            )


class TestPointInTriangle:
    def test_inside(self):
        assert point_in_triangle(
            Point(1, 1), Point(0, 0), Point(4, 0), Point(0, 4)
        )

    def test_outside(self):
        assert not point_in_triangle(
            Point(5, 5), Point(0, 0), Point(4, 0), Point(0, 4)
        )

    def test_vertex_counts_as_inside(self):
        assert point_in_triangle(
            Point(0, 0), Point(0, 0), Point(4, 0), Point(0, 4)
        )

    def test_edge_counts_as_inside(self):
        assert point_in_triangle(
            Point(2, 0), Point(0, 0), Point(4, 0), Point(0, 4)
        )


class TestAngleAt:
    def test_right_angle(self):
        assert angle_at(Point(0, 0), Point(1, 0), Point(0, 1)) == pytest.approx(
            math.pi / 2
        )

    def test_straight_angle(self):
        assert angle_at(Point(0, 0), Point(1, 0), Point(-1, 0)) == pytest.approx(
            math.pi
        )

    def test_zero_length_ray_raises(self):
        with pytest.raises(ValueError):
            angle_at(Point(0, 0), Point(0, 0), Point(1, 0))
