"""Tests for repro.geometry.hull."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.hull import convex_hull, hull_contains
from repro.geometry.predicates import orientation_value
from repro.geometry.primitives import Point, polygon_area

# Metre-scale coordinates quantized to 1 um.  Unrestricted floats admit
# denormal-scale inputs where algebraically-equal cross products evaluate
# to exactly 0.0 under permuted operand order — outside the coordinate
# regime this library targets (node positions in metres).
coords = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
).map(lambda x: round(x, 6))
points = st.builds(Point, coords, coords)


class TestConvexHull:
    def test_square_with_interior_point(self):
        pts = [
            Point(0, 0),
            Point(4, 0),
            Point(4, 4),
            Point(0, 4),
            Point(2, 2),  # interior — must not appear
        ]
        hull = convex_hull(pts)
        assert len(hull) == 4
        assert Point(2, 2) not in hull

    def test_hull_is_counterclockwise(self):
        pts = [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4), Point(1, 2)]
        hull = convex_hull(pts)
        assert polygon_area(hull) > 0

    def test_collinear_points_reduced_to_extremes(self):
        pts = [Point(float(i), float(i)) for i in range(5)]
        hull = convex_hull(pts)
        assert set(hull) == {Point(0, 0), Point(4, 4)}

    def test_duplicates_removed(self):
        pts = [Point(0, 0), Point(0, 0), Point(1, 0), Point(0, 1)]
        assert len(convex_hull(pts)) == 3

    def test_empty_and_tiny_inputs(self):
        assert convex_hull([]) == []
        assert convex_hull([Point(1, 1)]) == [Point(1, 1)]
        assert len(convex_hull([Point(0, 0), Point(1, 1)])) == 2

    def test_collinear_interior_points_excluded_from_hull_edges(self):
        pts = [Point(0, 0), Point(2, 0), Point(4, 0), Point(2, 3)]
        hull = convex_hull(pts)
        assert Point(2, 0) not in hull

    @given(st.lists(points, min_size=3, max_size=40))
    def test_hull_is_convex(self, pts):
        # Strict left turns in exact-expression terms: the monotone
        # chain pops on cross <= 0, so every surviving corner has a
        # positive raw cross product (the tolerance-based predicate may
        # still call near-degenerate corners collinear, which is fine).
        hull = convex_hull(pts)
        if len(hull) < 3:
            return
        n = len(hull)
        for i in range(n):
            a, b, c = hull[i], hull[(i + 1) % n], hull[(i + 2) % n]
            assert orientation_value(a, b, c) > 0

    @given(st.lists(points, min_size=1, max_size=40))
    def test_hull_contains_all_input_points(self, pts):
        hull = convex_hull(pts)
        for p in pts:
            assert hull_contains(hull, p, tol=1e-6)


class TestHullContains:
    def test_inside_square(self):
        hull = convex_hull(
            [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)]
        )
        assert hull_contains(hull, Point(2, 2))

    def test_outside_square(self):
        hull = convex_hull(
            [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)]
        )
        assert not hull_contains(hull, Point(5, 2))

    def test_on_boundary(self):
        hull = convex_hull(
            [Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)]
        )
        assert hull_contains(hull, Point(2, 0))

    def test_degenerate_segment_hull(self):
        hull = [Point(0, 0), Point(2, 0)]
        assert hull_contains(hull, Point(1, 0))
        assert not hull_contains(hull, Point(1, 1))

    def test_single_point_hull(self):
        assert hull_contains([Point(1, 1)], Point(1, 1))
        assert not hull_contains([Point(1, 1)], Point(2, 1))

    def test_empty_hull_contains_nothing(self):
        assert not hull_contains([], Point(0, 0))
