"""Tests for repro.geometry.primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.primitives import (
    Point,
    angle_between,
    bounding_box,
    centroid,
    distance,
    distance_sq,
    midpoint,
    polygon_area,
    segments_cross_interior,
    segments_intersect,
)

coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coords, coords)


class TestPoint:
    def test_iteration_yields_xy(self):
        assert list(Point(1.0, 2.0)) == [1.0, 2.0]

    def test_addition(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_subtraction(self):
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)

    def test_scalar_multiplication_both_sides(self):
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)

    def test_dot_product(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11

    def test_cross_product_sign(self):
        assert Point(1, 0).cross(Point(0, 1)) > 0
        assert Point(0, 1).cross(Point(1, 0)) < 0

    def test_norm(self):
        assert Point(3, 4).norm() == pytest.approx(5.0)

    def test_points_are_hashable_and_equal_by_value(self):
        assert {Point(1, 2), Point(1, 2)} == {Point(1, 2)}

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestDistance:
    def test_distance_known_value(self):
        assert distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_zero_for_same_point(self):
        assert distance(Point(7, -2), Point(7, -2)) == 0.0

    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert distance(a, b) == pytest.approx(distance(b, a))

    @given(points, points)
    def test_distance_sq_consistent_with_distance(self, a, b):
        assert distance_sq(a, b) == pytest.approx(distance(a, b) ** 2, rel=1e-9)

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6


class TestMidpointAndAngles:
    def test_midpoint(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    @given(points, points)
    def test_midpoint_equidistant(self, a, b):
        m = midpoint(a, b)
        assert distance(a, m) == pytest.approx(distance(b, m), abs=1e-6)

    def test_angle_between_axes(self):
        assert angle_between(Point(0, 0), Point(1, 0)) == pytest.approx(0.0)
        assert angle_between(Point(0, 0), Point(0, 1)) == pytest.approx(
            math.pi / 2
        )
        assert angle_between(Point(0, 0), Point(-1, 0)) == pytest.approx(
            math.pi
        )


class TestSegments:
    def test_crossing_segments_intersect(self):
        assert segments_intersect(
            Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0)
        )

    def test_parallel_segments_do_not_intersect(self):
        assert not segments_intersect(
            Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1)
        )

    def test_shared_endpoint_counts_as_intersection(self):
        assert segments_intersect(
            Point(0, 0), Point(1, 1), Point(1, 1), Point(2, 0)
        )

    def test_collinear_overlap_intersects(self):
        assert segments_intersect(
            Point(0, 0), Point(2, 0), Point(1, 0), Point(3, 0)
        )

    def test_collinear_disjoint_does_not_intersect(self):
        assert not segments_intersect(
            Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0)
        )

    def test_interior_crossing_detected(self):
        assert segments_cross_interior(
            Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0)
        )

    def test_shared_endpoint_not_interior_crossing(self):
        assert not segments_cross_interior(
            Point(0, 0), Point(1, 1), Point(1, 1), Point(2, 0)
        )

    def test_t_junction_is_interior_crossing(self):
        # q1q2 ends in the middle of p1p2: counts (edges of a planar
        # graph may only meet at shared vertices).
        assert segments_cross_interior(
            Point(0, 0), Point(2, 0), Point(1, -1), Point(1, 0)
        )


class TestPolygonArea:
    def test_unit_square_ccw_positive(self):
        square = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]
        assert polygon_area(square) == pytest.approx(1.0)

    def test_clockwise_negative(self):
        square = [Point(0, 0), Point(0, 1), Point(1, 1), Point(1, 0)]
        assert polygon_area(square) == pytest.approx(-1.0)

    def test_triangle(self):
        tri = [Point(0, 0), Point(4, 0), Point(0, 3)]
        assert polygon_area(tri) == pytest.approx(6.0)


class TestCentroidAndBox:
    def test_centroid_of_square(self):
        square = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(square) == Point(1, 1)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_bounding_box(self):
        lo, hi = bounding_box([Point(1, 5), Point(-2, 3), Point(4, 0)])
        assert lo == Point(-2, 0)
        assert hi == Point(4, 5)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
