"""Tests for the discrete-event scheduler."""

import pytest

from repro.seeding import derive_rng
from repro.sim.engine import PeriodicTask, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda: fired.append("c"))
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule_at(5.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_relative_schedule(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule_at(7.0, lambda: None)
        sim.run()
        assert sim.now == 7.0

    def test_run_until_stops_before_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append("early"))
        sim.schedule_at(50.0, lambda: fired.append("late"))
        sim.run(until=10.0)
        assert fired == ["early"]
        assert sim.now == 10.0

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_scheduling_into_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_nan_time_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_at(float("nan"), lambda: None)

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run(until=10.0)
        with pytest.raises(ValueError):
            sim.run(until=5.0)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, chain)

        sim.schedule_at(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule_at(1.0, lambda: None)
        sim.run()
        handle.cancel()  # should not raise

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        handle = sim.schedule_at(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events() == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_step_returns_false_when_empty(self):
        assert not Simulator().step()


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        PeriodicTask(sim, 1.0, lambda: fired.append(sim.now))
        sim.run(until=5.5)
        assert len(fired) == 6  # t = 0, 1, 2, 3, 4, 5

    def test_stop_prevents_future_fires(self):
        sim = Simulator()
        fired = []
        task = PeriodicTask(sim, 1.0, lambda: fired.append(sim.now))
        sim.schedule_at(2.5, task.stop)
        sim.run(until=10.0)
        assert all(t <= 2.5 for t in fired)

    def test_start_offset(self):
        sim = Simulator()
        fired = []
        PeriodicTask(
            sim, 1.0, lambda: fired.append(sim.now), start_offset=0.4
        )
        sim.run(until=2.5)
        assert fired == pytest.approx([0.4, 1.4, 2.4])

    def test_jitter_stays_within_bounds(self):
        sim = Simulator()
        fired = []
        rng = derive_rng(1, "jitter-test")
        PeriodicTask(
            sim,
            1.0,
            lambda: fired.append(sim.now),
            jitter=0.2,
            uniform=rng.uniform,
        )
        sim.run(until=20.0)
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        assert all(0.6 <= g <= 1.4 for g in gaps)

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTask(sim, 0.0, lambda: None)
        with pytest.raises(ValueError):
            PeriodicTask(sim, 1.0, lambda: None, jitter=1.0)
