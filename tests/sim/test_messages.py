"""Tests for messages, copies and frame constructors."""

import pytest

from repro.geometry.primitives import Point
from repro.sim.messages import (
    ACK_BYTES,
    HEADER_BYTES,
    FrameKind,
    Message,
    MessageCopy,
    ack_frame,
    data_frame,
    request_frame,
    summary_frame,
)


def make_message(**overrides):
    defaults = dict(source="s", dest="d", seq=0, created_at=1.0)
    defaults.update(overrides)
    return Message.create(**defaults)


class TestMessage:
    def test_unique_uids(self):
        a = make_message()
        b = make_message(seq=1)
        assert a.uid != b.uid

    def test_same_source_dest_rejected(self):
        with pytest.raises(ValueError):
            make_message(dest="s")

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValueError):
            make_message(size_bytes=0)

    def test_default_payload_size_is_paper_value(self):
        assert make_message().size_bytes == 1000


class TestMessageCopy:
    def test_copy_id_includes_branch_and_rank(self):
        msg = make_message()
        copy = MessageCopy(message=msg, branch="max", mid_rank=2)
        assert copy.copy_id == (msg.uid, "max", 2)

    def test_hopped_increments(self):
        copy = MessageCopy(message=make_message(), branch="max")
        assert copy.hopped().hops == 1
        assert copy.hopped().hopped().hops == 2
        assert copy.hops == 0  # original untouched

    def test_with_location(self):
        copy = MessageCopy(message=make_message(), branch="max")
        updated = copy.with_location(Point(1, 2), 42.0)
        assert updated.dest_location == Point(1, 2)
        assert updated.dest_location_time == 42.0
        assert copy.dest_location is None

    def test_face_mode_lifecycle(self):
        copy = MessageCopy(message=make_message(), branch="max")
        assert not copy.in_face_mode
        entered = copy.entering_face_mode(prev="n1", start_distance=50.0)
        assert entered.in_face_mode
        assert entered.face_steps == 1
        stepped = entered.face_stepped(prev="n2")
        assert stepped.face_steps == 2
        assert stepped.face_prev == "n2"
        left = stepped.leaving_face_mode()
        assert not left.in_face_mode
        assert left.face_steps == 0

    def test_leaving_face_mode_cooldown_is_sticky(self):
        copy = MessageCopy(message=make_message(), branch="max")
        blocked = copy.leaving_face_mode(block_until=100.0)
        assert blocked.face_block_until == 100.0
        # A later leave with a smaller block keeps the larger one.
        entered = blocked.entering_face_mode(prev="n", start_distance=1.0)
        again = entered.leaving_face_mode(block_until=50.0)
        assert again.face_block_until == 100.0


class TestFrames:
    def test_data_frame_carries_copy_and_size(self):
        msg = make_message(size_bytes=777)
        copy = MessageCopy(message=msg, branch="max")
        frame = data_frame("a", "b", copy)
        assert frame.kind is FrameKind.DATA
        assert frame.size_bytes == 777
        assert frame.airtime_bytes == 777 + HEADER_BYTES
        assert frame.payload is copy

    def test_ack_frame(self):
        frame = ack_frame("b", "a", (1, "max", 0))
        assert frame.kind is FrameKind.ACK
        assert frame.size_bytes == ACK_BYTES
        assert frame.payload == (1, "max", 0)

    def test_summary_frame_size_scales_with_vector(self):
        small = summary_frame("a", "b", frozenset({1}))
        large = summary_frame("a", "b", frozenset(range(100)))
        assert large.size_bytes > small.size_bytes

    def test_empty_summary_has_minimum_size(self):
        frame = summary_frame("a", "b", frozenset())
        assert frame.size_bytes > 0

    def test_request_frame_payload_preserved(self):
        frame = request_frame("a", "b", (5, 6, 7))
        assert frame.kind is FrameKind.REQUEST
        assert frame.payload == (5, 6, 7)

    def test_frame_uids_unique(self):
        f1 = ack_frame("a", "b", (1, "max", 0))
        f2 = ack_frame("a", "b", (1, "max", 0))
        assert f1.uid != f2.uid
