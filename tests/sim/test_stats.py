"""Tests for metrics collection."""

import pytest

from repro.sim.messages import Message
from repro.sim.stats import MetricsCollector


def make_message(seq=0, created_at=1.0):
    return Message.create(
        source="s", dest="d", seq=seq, created_at=created_at
    )


class TestLifecycle:
    def test_delivery_ratio(self):
        collector = MetricsCollector()
        messages = [make_message(seq=i) for i in range(4)]
        for m in messages:
            collector.on_created(m)
        collector.on_delivered(messages[0], now=5.0, hops=2)
        collector.on_delivered(messages[1], now=6.0, hops=3)
        snap = collector.snapshot("test", 100.0, {}, 0)
        assert snap.delivery_ratio == pytest.approx(0.5)
        assert snap.messages_created == 4
        assert snap.messages_delivered == 2

    def test_first_delivery_wins(self):
        collector = MetricsCollector()
        m = make_message()
        collector.on_created(m)
        collector.on_delivered(m, now=5.0, hops=2)
        collector.on_delivered(m, now=50.0, hops=9)  # duplicate arrival
        snap = collector.snapshot("test", 100.0, {}, 0)
        assert snap.messages_delivered == 1
        assert snap.average_latency == pytest.approx(4.0)
        assert snap.average_hops == pytest.approx(2.0)

    def test_unknown_delivery_rejected(self):
        collector = MetricsCollector()
        with pytest.raises(ValueError):
            collector.on_delivered(make_message(), now=5.0, hops=1)

    def test_delivery_before_creation_rejected(self):
        collector = MetricsCollector()
        m = make_message(created_at=10.0)
        collector.on_created(m)
        with pytest.raises(ValueError):
            collector.on_delivered(m, now=5.0, hops=1)

    def test_is_delivered(self):
        collector = MetricsCollector()
        m = make_message()
        collector.on_created(m)
        assert not collector.is_delivered(m.uid)
        collector.on_delivered(m, now=2.0, hops=1)
        assert collector.is_delivered(m.uid)
        assert collector.delivered_uids() == {m.uid}


class TestSnapshot:
    def test_empty_run(self):
        snap = MetricsCollector().snapshot("test", 100.0, {}, 5)
        assert snap.delivery_ratio == 1.0
        assert snap.average_latency is None
        assert snap.average_hops is None
        assert snap.max_peak_storage == 0
        assert snap.events_processed == 5

    def test_storage_aggregation(self):
        collector = MetricsCollector()
        collector.record_storage("a", peak=10, time_average=3.0)
        collector.record_storage("b", peak=4, time_average=1.0)
        snap = collector.snapshot("test", 100.0, {}, 0)
        assert snap.max_peak_storage == 10
        assert snap.average_peak_storage == pytest.approx(7.0)
        assert snap.time_average_storage == pytest.approx(2.0)
        assert snap.per_node_peak_storage == {"a": 10, "b": 4}

    def test_mac_totals_copied(self):
        snap = MetricsCollector().snapshot(
            "test",
            100.0,
            {
                "frames_sent": 10,
                "frames_delivered": 8,
                "frames_lost_collision": 1,
                "frames_lost_range": 1,
                "frames_dropped_queue": 0,
                "retries": 2,
                "bytes_sent": 12345,
            },
            0,
        )
        assert snap.frames_sent == 10
        assert snap.frames_delivered == 8
        assert snap.data_bytes_sent == 12345

    def test_control_bytes(self):
        collector = MetricsCollector()
        collector.on_control_bytes(100)
        collector.on_control_bytes(50)
        snap = collector.snapshot("test", 1.0, {}, 0)
        assert snap.control_bytes_sent == 150

    def test_latency_and_hop_lists_exposed(self):
        collector = MetricsCollector()
        messages = [make_message(seq=i, created_at=0.0) for i in range(3)]
        for i, m in enumerate(messages):
            collector.on_created(m)
            collector.on_delivered(m, now=float(i + 1), hops=i + 1)
        snap = collector.snapshot("test", 10.0, {}, 0)
        assert sorted(snap.latencies) == [1.0, 2.0, 3.0]
        assert sorted(snap.hop_counts) == [1, 2, 3]


class TestMetricsJsonRoundTrip:
    def _snapshot(self):
        collector = MetricsCollector()
        messages = [make_message(seq=i) for i in range(3)]
        for m in messages:
            collector.on_created(m)
        collector.on_delivered(messages[0], now=5.0, hops=2)
        collector.record_storage("n0", peak=4, time_average=1.5)
        return collector.snapshot("test", 100.0, {"frames_sent": 7}, 42)

    def test_round_trip_is_exact(self):
        import json

        from repro.sim.stats import SimulationMetrics

        snap = self._snapshot()
        # per_node_peak_storage keys are ints in simulator output;
        # rebuild with int keys to mirror the real shape.
        snap.per_node_peak_storage = {0: 4}
        document = json.loads(json.dumps(snap.to_json()))
        assert SimulationMetrics.from_json(document) == snap

    def test_missing_field_rejected(self):
        from repro.sim.stats import SimulationMetrics

        data = self._snapshot().to_json()
        data.pop("delivery_ratio")
        with pytest.raises(ValueError):
            SimulationMetrics.from_json(data)

    def test_extra_field_rejected(self):
        from repro.sim.stats import SimulationMetrics

        data = self._snapshot().to_json()
        data["bogus"] = 1
        with pytest.raises(ValueError):
            SimulationMetrics.from_json(data)

    def test_malformed_shapes_rejected(self):
        from repro.sim.stats import SimulationMetrics

        for field, bad in (
            ("per_node_peak_storage", []),
            ("latencies", {}),
            ("hop_counts", "xyz"),
        ):
            data = self._snapshot().to_json()
            data[field] = bad
            with pytest.raises(ValueError):
                SimulationMetrics.from_json(data)

    def test_non_dict_rejected(self):
        from repro.sim.stats import SimulationMetrics

        with pytest.raises(ValueError):
            SimulationMetrics.from_json(None)
        with pytest.raises(ValueError):
            SimulationMetrics.from_json([1, 2])
