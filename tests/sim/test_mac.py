"""Tests for the radio model and contention MAC."""

import pytest

from repro.geometry.primitives import Point
from repro.seeding import derive_rng
from repro.sim.engine import Simulator
from repro.sim.mac import MacConfig, Medium, NodeMac
from repro.sim.messages import Frame, FrameKind
from repro.sim.radio import RadioConfig


def make_frame(sender, receiver, size=1000, kind=FrameKind.DATA):
    return Frame(
        kind=kind, sender=sender, receiver=receiver, payload=None,
        size_bytes=size,
    )


class TestRadioConfig:
    def test_airtime_at_1mbps(self):
        radio = RadioConfig(data_rate_bps=1_000_000.0)
        assert radio.airtime(1000) == pytest.approx(0.008)

    def test_in_range(self):
        radio = RadioConfig(range_m=100.0)
        assert radio.in_range(Point(0, 0), Point(100, 0))
        assert not radio.in_range(Point(0, 0), Point(100.1, 0))

    def test_carrier_sense_wider_than_range(self):
        radio = RadioConfig(range_m=100.0, carrier_sense_factor=2.2)
        assert radio.carrier_sense_range == pytest.approx(220.0)
        assert radio.in_carrier_sense_range(Point(0, 0), Point(200, 0))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RadioConfig(range_m=0.0)
        with pytest.raises(ValueError):
            RadioConfig(data_rate_bps=-1.0)
        with pytest.raises(ValueError):
            RadioConfig(carrier_sense_factor=0.5)
        with pytest.raises(ValueError):
            RadioConfig().airtime(-1)


class TestMacConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MacConfig(queue_limit=0)
        with pytest.raises(ValueError):
            MacConfig(slot_time=0.0)
        with pytest.raises(ValueError):
            MacConfig(retry_limit=0)
        with pytest.raises(ValueError):
            MacConfig(collision_probability=1.5)


class TestMedium:
    def test_contention_counts_nearby_transmissions(self):
        sim = Simulator()
        radio = RadioConfig(range_m=100.0)
        medium = Medium(sim, radio)
        medium.register("a", Point(0, 0), 0.0, 1.0)
        medium.register("b", Point(50, 0), 0.0, 1.0)
        medium.register("far", Point(10_000, 0), 0.0, 1.0)
        assert medium.contention_at(Point(10, 0)) == 2
        assert medium.contention_at(Point(10, 0), exclude="a") == 1

    def test_future_transmissions_invisible(self):
        sim = Simulator()
        medium = Medium(sim, RadioConfig(range_m=100.0))
        medium.register("a", Point(0, 0), 5.0, 6.0)  # starts later
        assert medium.contention_at(Point(0, 0)) == 0
        assert medium.busy_until(Point(0, 0)) == sim.now

    def test_busy_until_latest_end(self):
        sim = Simulator()
        medium = Medium(sim, RadioConfig(range_m=100.0))
        medium.register("a", Point(0, 0), 0.0, 1.0)
        medium.register("b", Point(10, 0), 0.0, 3.0)
        assert medium.busy_until(Point(0, 0)) == 3.0

    def test_interferers_overlap_window(self):
        sim = Simulator()
        medium = Medium(sim, RadioConfig(range_m=100.0))
        medium.register("a", Point(0, 0), 0.0, 1.0)
        medium.register("b", Point(0, 0), 2.0, 3.0)
        assert medium.interferers_at(Point(0, 0), 0.5, 2.5) == 2
        assert medium.interferers_at(Point(0, 0), 1.2, 1.8) == 0

    def test_expired_transmissions_purged(self):
        sim = Simulator()
        medium = Medium(sim, RadioConfig(range_m=100.0))
        medium.register("a", Point(0, 0), 0.0, 0.5)
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        assert medium.contention_at(Point(0, 0)) == 0
        assert medium.active_count() == 0


class _StaticPositions:
    """Position oracle for MAC tests: fixed coordinates per node."""

    def __init__(self, coords):
        self.coords = coords

    def __call__(self, node, t):
        return self.coords[node]


def build_mac_pair(coords, mac_config=None, radio=None):
    sim = Simulator()
    radio = radio or RadioConfig(range_m=100.0)
    medium = Medium(sim, radio)
    delivered = []
    positions = _StaticPositions(coords)
    macs = {}
    for node in coords:
        macs[node] = NodeMac(
            sim=sim,
            medium=medium,
            radio=radio,
            config=mac_config or MacConfig(),
            node_id=node,
            position_fn=positions,
            deliver=delivered.append,
            rng=derive_rng(1, node, "mac-test"),
        )
    return sim, macs, delivered


class TestNodeMac:
    def test_delivers_frame_in_range(self):
        sim, macs, delivered = build_mac_pair(
            {"a": Point(0, 0), "b": Point(50, 0)}
        )
        assert macs["a"].enqueue(make_frame("a", "b"))
        sim.run(until=1.0)
        assert len(delivered) == 1
        assert delivered[0].receiver == "b"

    def test_out_of_range_frame_lost_after_retries(self):
        sim, macs, delivered = build_mac_pair(
            {"a": Point(0, 0), "b": Point(500, 0)}
        )
        macs["a"].enqueue(make_frame("a", "b"))
        sim.run(until=1.0)
        assert delivered == []
        assert macs["a"].stats.frames_lost_range >= 1
        assert macs["a"].stats.retries == MacConfig().retry_limit - 1

    def test_queue_limit_drops(self):
        config = MacConfig(queue_limit=2)
        sim, macs, delivered = build_mac_pair(
            {"a": Point(0, 0), "b": Point(50, 0)}, mac_config=config
        )
        results = [
            macs["a"].enqueue(make_frame("a", "b")) for _ in range(5)
        ]
        # First goes straight to transmission; two queue; rest dropped.
        assert results.count(False) == 2
        assert macs["a"].stats.frames_dropped_queue == 2

    def test_ack_frames_jump_queue(self):
        sim, macs, delivered = build_mac_pair(
            {"a": Point(0, 0), "b": Point(50, 0)}
        )
        macs["a"].enqueue(make_frame("a", "b"))  # in flight
        macs["a"].enqueue(make_frame("a", "b", size=1000))  # queued data
        macs["a"].enqueue(
            make_frame("a", "b", size=20, kind=FrameKind.ACK)
        )
        sim.run(until=1.0)
        kinds = [f.kind for f in delivered]
        assert kinds[1] is FrameKind.ACK  # overtook the queued DATA

    def test_wrong_sender_rejected(self):
        sim, macs, _ = build_mac_pair(
            {"a": Point(0, 0), "b": Point(50, 0)}
        )
        with pytest.raises(ValueError):
            macs["a"].enqueue(make_frame("b", "a"))

    def test_half_duplex_serializes_own_frames(self):
        sim, macs, delivered = build_mac_pair(
            {"a": Point(0, 0), "b": Point(50, 0)}
        )
        for _ in range(3):
            macs["a"].enqueue(make_frame("a", "b"))
        sim.run(until=10.0)
        assert len(delivered) == 3

    def test_deferral_serializes_neighbors(self):
        # Two senders in carrier-sense range: their airtimes should not
        # overlap much; total completion time ~ sum of airtimes.
        sim, macs, delivered = build_mac_pair(
            {"a": Point(0, 0), "b": Point(50, 0), "c": Point(25, 10)}
        )
        macs["a"].enqueue(make_frame("a", "c", size=10_000))
        macs["b"].enqueue(make_frame("b", "c", size=10_000))
        sim.run(until=5.0)
        assert len(delivered) == 2

    def test_unknown_receiver_counts_range_loss(self):
        sim, macs, delivered = build_mac_pair({"a": Point(0, 0)})
        macs["a"].enqueue(make_frame("a", "ghost"))
        sim.run(until=1.0)
        assert delivered == []
        assert macs["a"].stats.frames_lost_range >= 1

    def test_stats_bytes_accumulate(self):
        sim, macs, _ = build_mac_pair(
            {"a": Point(0, 0), "b": Point(50, 0)}
        )
        macs["a"].enqueue(make_frame("a", "b", size=1000))
        sim.run(until=1.0)
        assert macs["a"].stats.bytes_sent >= 1000
