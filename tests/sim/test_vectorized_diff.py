"""Differential tests: vectorized UDG kernel vs the reference builder.

The vectorized engine's correctness argument rests on the cell-binning
kernel producing *exactly* the reference edge set — not approximately,
exactly, including pairs at exactly radius distance and degenerate
coincident points.  These tests compare the two constructions over
randomized node clouds and adversarial geometries.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.geometry.primitives import Point
from repro.graphs.udg import (
    ArraySpatialGraph,
    unit_disk_edge_indices,
    unit_disk_graph,
    unit_disk_graph_from_array,
)
from repro.sim.arraystate import ArrayState


def reference_edges(points: list[Point], radius: float) -> set[tuple[int, int]]:
    """Edge set from the pure-Python builder, as sorted row-index pairs."""
    graph = unit_disk_graph({i: p for i, p in enumerate(points)}, radius)
    return {tuple(sorted(edge)) for edge in graph.edges()}


def kernel_edges(points: list[Point], radius: float) -> set[tuple[int, int]]:
    """Edge set from the vectorized kernel, as sorted row-index pairs."""
    array = np.array([(p.x, p.y) for p in points], dtype=np.float64)
    array = array.reshape(len(points), 2)
    edges = unit_disk_edge_indices(array, radius)
    return {tuple(sorted(pair)) for pair in edges.tolist()}


def random_cloud(rng: random.Random, n: int, width: float, height: float):
    return [
        Point(rng.uniform(0.0, width), rng.uniform(0.0, height))
        for _ in range(n)
    ]


class TestKernelDifferential:
    @pytest.mark.parametrize("trial", range(10))
    def test_random_clouds_match_reference(self, trial):
        rng = random.Random(1000 + trial)
        n = rng.randint(2, 120)
        width = rng.uniform(50.0, 1500.0)
        height = rng.uniform(50.0, 500.0)
        radius = rng.uniform(10.0, 300.0)
        points = random_cloud(rng, n, width, height)
        assert kernel_edges(points, radius) == reference_edges(points, radius)

    @pytest.mark.parametrize("trial", range(5))
    def test_dense_clusters_match_reference(self, trial):
        """Many nodes inside one radius — every cell-offset pairing hit."""
        rng = random.Random(2000 + trial)
        radius = 100.0
        points = random_cloud(rng, 60, 2.5 * radius, 2.5 * radius)
        assert kernel_edges(points, radius) == reference_edges(points, radius)

    def test_coincident_points_are_adjacent(self):
        points = [Point(5.0, 5.0)] * 4 + [Point(400.0, 400.0)]
        edges = kernel_edges(points, 10.0)
        assert edges == {(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)}
        assert edges == reference_edges(points, 10.0)

    def test_pair_at_exactly_radius_distance_is_an_edge(self):
        # The UDG predicate is <= r; a pair at exactly r must connect.
        points = [Point(0.0, 0.0), Point(100.0, 0.0)]
        assert kernel_edges(points, 100.0) == {(0, 1)}

    def test_pair_one_ulp_past_radius_is_not_an_edge(self):
        x = math.nextafter(100.0, math.inf)
        points = [Point(0.0, 0.0), Point(x, 0.0)]
        assert kernel_edges(points, 100.0) == set()
        assert reference_edges(points, 100.0) == set()

    def test_diagonal_pair_at_exact_radius(self):
        # 3-4-5 triangle: hypotenuse is exactly representable.
        points = [Point(0.0, 0.0), Point(30.0, 40.0)]
        assert kernel_edges(points, 50.0) == {(0, 1)}
        assert reference_edges(points, 50.0) == {(0, 1)}

    def test_region_boundary_nodes(self):
        """Nodes pinned to corners/borders (clamped mobility output)."""
        rng = random.Random(77)
        width, height = 1500.0, 300.0
        points = [
            Point(0.0, 0.0),
            Point(width, 0.0),
            Point(0.0, height),
            Point(width, height),
            Point(width / 2, 0.0),
            Point(width / 2, height),
            Point(0.0, height / 2),
            Point(width, height / 2),
        ]
        points += random_cloud(rng, 40, width, height)
        for radius in (50.0, 150.0, 300.0):
            assert kernel_edges(points, radius) == reference_edges(
                points, radius
            )

    def test_negative_coordinates(self):
        """The cell shift must handle positions left/below the origin."""
        rng = random.Random(88)
        points = [
            Point(rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0))
            for _ in range(50)
        ]
        assert kernel_edges(points, 120.0) == reference_edges(points, 120.0)

    def test_collinear_points_on_grid_lines(self):
        """Points exactly on cell boundaries (multiples of the radius)."""
        radius = 50.0
        points = [Point(radius * i, 0.0) for i in range(6)]
        points += [Point(radius * i, radius) for i in range(6)]
        assert kernel_edges(points, radius) == reference_edges(points, radius)

    def test_empty_cloud(self):
        edges = unit_disk_edge_indices(
            np.empty((0, 2), dtype=np.float64), 10.0
        )
        assert edges.shape == (0, 2)

    def test_single_node(self):
        edges = unit_disk_edge_indices(
            np.array([[3.0, 4.0]], dtype=np.float64), 10.0
        )
        assert edges.shape == (0, 2)

    def test_rejects_non_positive_radius(self):
        array = np.zeros((2, 2), dtype=np.float64)
        with pytest.raises(ValueError):
            unit_disk_edge_indices(array, 0.0)
        with pytest.raises(ValueError):
            unit_disk_edge_indices(array, -5.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            unit_disk_edge_indices(np.zeros((4, 3)), 10.0)


class TestArraySpatialGraph:
    """The lazy array-backed snapshot equals the reference graph."""

    def build_pair(self, seed: int, n: int, radius: float):
        rng = random.Random(seed)
        points = random_cloud(rng, n, 1000.0, 400.0)
        reference = unit_disk_graph(
            {i: p for i, p in enumerate(points)}, radius
        )
        array = np.array(
            [(p.x, p.y) for p in points], dtype=np.float64
        ).reshape(n, 2)
        lazy = unit_disk_graph_from_array(tuple(range(n)), array, radius)
        return reference, lazy

    def test_positions_match(self):
        reference, lazy = self.build_pair(seed=5, n=80, radius=120.0)
        assert lazy.positions == reference.positions

    def test_edges_and_counts_match(self):
        reference, lazy = self.build_pair(seed=6, n=80, radius=120.0)
        assert lazy.edges() == reference.edges()
        assert lazy.edge_count() == reference.edge_count()

    def test_neighbors_and_degree_match(self):
        reference, lazy = self.build_pair(seed=7, n=60, radius=150.0)
        for node in reference.nodes():
            assert lazy.neighbors(node) == reference.neighbors(node)
            assert lazy.degree(node) == reference.degree(node)

    def test_adjacency_matches(self):
        reference, lazy = self.build_pair(seed=8, n=60, radius=150.0)
        assert lazy.adjacency == reference.adjacency

    def test_k_hop_matches(self):
        reference, lazy = self.build_pair(seed=9, n=50, radius=100.0)
        for node in (0, 17, 49):
            for k in (1, 2, 3):
                assert lazy.k_hop_neighborhood(
                    node, k
                ) == reference.k_hop_neighborhood(node, k)

    def test_neighbors_of_unknown_node_is_empty(self):
        _, lazy = self.build_pair(seed=10, n=10, radius=50.0)
        assert lazy.neighbors(999) == set()
        assert lazy.neighbors("nope") == set()

    def test_non_integer_ids_relabel(self):
        rng = random.Random(11)
        points = random_cloud(rng, 20, 400.0, 400.0)
        ids = tuple(f"node-{i}" for i in range(20))
        array = np.array([(p.x, p.y) for p in points], dtype=np.float64)
        lazy = unit_disk_graph_from_array(ids, array, 150.0)
        reference = unit_disk_graph(
            dict(zip(ids, points)), 150.0
        )
        assert lazy.positions == reference.positions
        assert lazy.adjacency == reference.adjacency
        assert lazy.neighbors("node-3") == reference.neighbors("node-3")
        assert lazy.neighbors("absent") == set()

    def test_neighbors_before_and_after_adjacency_materialization(self):
        """Per-node lazy sets agree with the materialized dict."""
        _, lazy = self.build_pair(seed=12, n=40, radius=120.0)
        early = {node: lazy.neighbors(node) for node in (0, 1, 2)}
        full = lazy.adjacency
        for node, nbrs in early.items():
            assert full[node] == nbrs

    def test_empty_graph(self):
        lazy = unit_disk_graph_from_array(
            (), np.empty((0, 2), dtype=np.float64), 10.0
        )
        assert lazy.nodes() == []
        assert lazy.edge_count() == 0
        assert lazy.edges() == set()

    def test_single_node_graph(self):
        lazy = unit_disk_graph_from_array(
            (0,), np.array([[1.0, 2.0]], dtype=np.float64), 10.0
        )
        assert lazy.nodes() == [0]
        assert lazy.neighbors(0) == set()
        assert lazy.positions[0] == Point(1.0, 2.0)

    def test_id_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            unit_disk_graph_from_array(
                (0, 1, 2), np.zeros((2, 2), dtype=np.float64), 10.0
            )

    def test_isinstance_spatial_graph(self):
        _, lazy = self.build_pair(seed=13, n=5, radius=50.0)
        assert isinstance(lazy, ArraySpatialGraph)


class TestArrayStateSnapshot:
    """ArrayState.unit_disk_snapshot equals the reference over mobility."""

    def test_snapshot_equals_reference_over_mobility(self):
        from repro.mobility.base import Region
        from repro.mobility.random_waypoint import RandomWaypointMobility

        region = Region(800.0, 300.0)
        mobility = RandomWaypointMobility(
            node_ids=list(range(40)), region=region, seed=21
        )
        for t in (0.0, 3.5, 57.0, 120.0):
            state = ArrayState.from_mobility(mobility, t)
            snapshot = state.unit_disk_snapshot(100.0)
            reference = unit_disk_graph(mobility.positions(t), 100.0)
            assert snapshot.positions == reference.positions
            assert snapshot.edges() == reference.edges()
