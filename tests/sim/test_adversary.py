"""Tests for Byzantine adversary injection (repro.sim.adversary)."""

import dataclasses

import pytest

from repro.experiments.runner import build_world, run_replicates, run_single
from repro.experiments.scenarios import Scenario
from repro.seeding import replicate_seed
from repro.sim.adversary import (
    AdversaryConfig,
    AdversaryPlan,
    BlackholeWrapper,
    LocationLyingWrapper,
    SelectiveDropWrapper,
    adversary_node_set,
    as_adversary_config,
    available_adversary_modes,
    build_adversary_plan,
    register_adversary_mode,
    resolve_adversary_mode,
)

SMALL = Scenario(
    n_nodes=20,
    active_nodes=10,
    message_count=30,
    sim_time=120.0,
    seed=7,
)


class TestAdversaryConfig:
    def test_builtin_modes_registered(self):
        assert {"blackhole", "selective_drop", "location_lying"} <= set(
            available_adversary_modes()
        )

    def test_aliases_resolve(self):
        assert resolve_adversary_mode("greyhole") == "selective_drop"
        assert resolve_adversary_mode("grayhole") == "selective_drop"
        assert resolve_adversary_mode("liar") == "location_lying"
        assert resolve_adversary_mode("sink") == "blackhole"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary mode"):
            AdversaryConfig.of("wormhole", 0.2)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            AdversaryConfig.of("blackhole", -0.1)
        with pytest.raises(ValueError, match="fraction"):
            AdversaryConfig.of("blackhole", 1.5)
        with pytest.raises(ValueError, match="fraction"):
            AdversaryConfig.of("blackhole", 0.0)

    def test_integral_fraction_canonicalises(self):
        assert AdversaryConfig.of("blackhole", 1.0) == AdversaryConfig.of(
            "blackhole", 1
        )

    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            AdversaryConfig.of("blackhole", 0.2, drop_rate=0.5)

    def test_str_round_trips(self):
        config = AdversaryConfig.of("selective_drop", 0.4, drop_rate=0.8)
        assert as_adversary_config(str(config)) == config
        bare = AdversaryConfig.of("blackhole", 0.2)
        assert as_adversary_config(str(bare)) == bare

    def test_coercion_forms(self):
        from_str = as_adversary_config("blackhole:0.2")
        from_map = as_adversary_config({"mode": "blackhole", "fraction": 0.2})
        from_cfg = as_adversary_config(AdversaryConfig.of("blackhole", 0.2))
        assert from_str == from_map == from_cfg

    def test_zero_fraction_coerces_to_none(self):
        assert as_adversary_config(None) is None
        assert as_adversary_config("none") is None
        assert as_adversary_config("off") is None
        assert as_adversary_config("blackhole:0") is None
        assert (
            as_adversary_config({"mode": "blackhole", "fraction": 0}) is None
        )

    def test_bad_strings_rejected(self):
        with pytest.raises(ValueError, match="needs a fraction"):
            as_adversary_config("blackhole")
        with pytest.raises(ValueError, match="bad adversary fraction"):
            as_adversary_config("blackhole:lots")
        with pytest.raises(ValueError, match="key=value"):
            as_adversary_config("selective_drop:0.2:droprate")

    def test_to_json_round_trips(self):
        config = AdversaryConfig.of("selective_drop", 0.4, drop_rate=0.8)
        assert as_adversary_config(config.to_json()) == config

    def test_register_custom_mode(self):
        register_adversary_mode(
            "test_noop", lambda inner, node_id, rng: inner
        )
        try:
            assert "test_noop" in available_adversary_modes()
            assert (
                AdversaryConfig.of("test_noop", 0.5).mode == "test_noop"
            )
        finally:
            from repro.sim import adversary as mod

            mod._MODES.pop("test_noop", None)


class TestNodeSelection:
    def test_fraction_scales_count(self):
        config = AdversaryConfig.of("blackhole", 0.2)
        nodes = adversary_node_set(config, list(range(50)), seed=1)
        assert len(nodes) == 10
        assert nodes <= set(range(50))

    def test_same_seed_same_set(self):
        config = AdversaryConfig.of("blackhole", 0.3)
        ids = list(range(40))
        assert adversary_node_set(config, ids, 5) == adversary_node_set(
            config, ids, 5
        )

    def test_different_seed_usually_different_set(self):
        config = AdversaryConfig.of("blackhole", 0.3)
        ids = list(range(40))
        sets = {
            frozenset(adversary_node_set(config, ids, s)) for s in range(8)
        }
        assert len(sets) > 1

    def test_selection_ignores_input_order(self):
        config = AdversaryConfig.of("blackhole", 0.25)
        ids = list(range(40))
        assert adversary_node_set(config, ids, 3) == adversary_node_set(
            config, list(reversed(ids)), 3
        )

    def test_full_fraction_compromises_everyone(self):
        config = AdversaryConfig.of("blackhole", 1.0)
        assert adversary_node_set(config, list(range(10)), 1) == set(
            range(10)
        )

    def test_build_plan_none_passthrough(self):
        assert build_adversary_plan(None, list(range(10)), 1) is None

    def test_plan_carries_selection(self):
        config = AdversaryConfig.of("blackhole", 0.2)
        plan = build_adversary_plan(config, list(range(50)), 9)
        assert isinstance(plan, AdversaryPlan)
        assert plan.nodes == adversary_node_set(config, list(range(50)), 9)


class TestWorldWiring:
    def test_world_wraps_exactly_the_selected_nodes(self):
        scenario = SMALL.but(adversary="blackhole:0.25")
        world = build_world(scenario, "epidemic")
        expected = adversary_node_set(
            scenario.adversary, list(range(scenario.n_nodes)), scenario.seed
        )
        assert set(world.adversaries) == expected
        for node, wrapper in world.adversaries.items():
            assert isinstance(wrapper, BlackholeWrapper)
            assert world.protocols[node] is wrapper

    def test_honest_world_has_no_wrappers(self):
        world = build_world(SMALL, "epidemic")
        assert world.adversary is None
        assert world.adversaries == {}

    def test_wrapper_delegates_storage_metrics(self):
        scenario = SMALL.but(adversary="selective_drop:0.25")
        world = build_world(scenario, "epidemic")
        world.run(until=60.0, protocol_name="epidemic")
        for wrapper in world.adversaries.values():
            assert wrapper.storage_occupancy() == (
                wrapper.inner.storage_occupancy()
            )
            assert wrapper.storage_peak() == wrapper.inner.storage_peak()

    def test_blackhole_swallows_frames(self):
        scenario = SMALL.but(adversary="blackhole:0.25")
        world = build_world(scenario, "epidemic")
        world.run(until=120.0, protocol_name="epidemic")
        assert sum(
            w.frames_dropped for w in world.adversaries.values()
        ) > 0

    def test_location_lying_poisons_data(self):
        scenario = SMALL.but(adversary="location_lying:0.25")
        world = build_world(scenario, "glr")
        world.run(until=120.0, protocol_name="glr")
        assert isinstance(
            next(iter(world.adversaries.values())), LocationLyingWrapper
        )
        assert sum(
            w.frames_poisoned for w in world.adversaries.values()
        ) > 0

    def test_selective_drop_is_partial(self):
        scenario = SMALL.but(
            adversary="selective_drop:0.25:drop_rate=0.5"
        )
        world = build_world(scenario, "epidemic")
        world.run(until=120.0, protocol_name="epidemic")
        wrappers = list(world.adversaries.values())
        assert all(isinstance(w, SelectiveDropWrapper) for w in wrappers)
        assert sum(w.frames_dropped for w in wrappers) > 0
        # Control traffic passes, so the inner protocols still hold
        # messages they requested through summaries.
        assert any(w.inner.storage_peak() > 0 for w in wrappers)


class TestAdversarialDeterminism:
    """The adversary axis must not break the parallel == serial law."""

    def test_same_seed_same_metrics(self):
        scenario = SMALL.but(adversary="blackhole:0.3")
        a = run_single(scenario, "epidemic")
        b = run_single(scenario, "epidemic")
        assert a == b

    def test_serial_parallel_equivalence(self):
        scenario = SMALL.but(adversary="selective_drop:0.3")
        serial = run_replicates(scenario, "epidemic", runs=3, workers=1)
        parallel = run_replicates(scenario, "epidemic", runs=3, workers=2)
        assert serial == parallel

    def test_replicates_use_replicate_seed_selection(self):
        scenario = SMALL.but(adversary="blackhole:0.3")
        ids = list(range(scenario.n_nodes))
        for i in range(3):
            replicate = scenario.with_seed(replicate_seed(scenario.seed, i))
            world = build_world(replicate, "epidemic")
            assert set(world.adversaries) == adversary_node_set(
                scenario.adversary, ids, replicate.seed
            )

    def test_delivery_degrades_under_blackhole(self):
        honest = run_single(SMALL, "epidemic")
        attacked = run_single(
            SMALL.but(adversary="blackhole:0.3"), "epidemic"
        )
        assert attacked.delivery_ratio < honest.delivery_ratio


class TestScenarioField:
    def test_scenario_coerces_adversary_strings(self):
        scenario = Scenario(adversary="blackhole:0.2")
        assert scenario.adversary == AdversaryConfig.of("blackhole", 0.2)

    def test_scenario_zero_fraction_is_none(self):
        assert Scenario(adversary="blackhole:0").adversary is None
        assert Scenario(adversary="blackhole:0") == Scenario()

    def test_but_replaces_adversary(self):
        scenario = Scenario().but(adversary="liar:0.1")
        assert scenario.adversary.mode == "location_lying"
        assert scenario.but(adversary=None).adversary is None

    def test_wrapped_protocol_keeps_inner_name(self):
        scenario = SMALL.but(adversary="blackhole:0.25")
        world = build_world(scenario, "epidemic")
        for wrapper in world.adversaries.values():
            assert wrapper.name == "epidemic"
