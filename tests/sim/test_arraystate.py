"""Engine selection, array state, and the numpy-missing error path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.scenarios import Scenario
from repro.geometry.primitives import Point
from repro.mobility.base import Region
from repro.mobility.static import StaticMobility
from repro.sim import arraystate
from repro.sim.arraystate import (
    ENGINE_ENV,
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    ENGINES,
    ArrayState,
    VectorizedEngineUnavailableError,
    resolve_engine,
)
from repro.sim.world import WorldConfig


class TestResolveEngine:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine() == ENGINE_REFERENCE
        assert resolve_engine(None) == ENGINE_REFERENCE

    def test_env_variable_selects_engine(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "vectorized")
        assert resolve_engine() == ENGINE_VECTORIZED

    def test_explicit_engine_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "vectorized")
        assert resolve_engine("reference") == ENGINE_REFERENCE

    def test_empty_env_means_default(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "")
        assert resolve_engine() == ENGINE_REFERENCE

    def test_names_are_normalized(self):
        assert resolve_engine("  Vectorized ") == ENGINE_VECTORIZED
        assert resolve_engine("REFERENCE") == ENGINE_REFERENCE

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown simulation engine"):
            resolve_engine("turbo")
        monkeypatch.setenv(ENGINE_ENV, "turbo")
        with pytest.raises(ValueError, match="unknown simulation engine"):
            resolve_engine()

    def test_engines_tuple_lists_reference_first(self):
        assert ENGINES == (ENGINE_REFERENCE, ENGINE_VECTORIZED)


class TestNumpyMissing:
    @pytest.fixture
    def no_numpy(self, monkeypatch):
        """Pretend numpy is not importable (cache holds the result)."""
        monkeypatch.setattr(arraystate, "_numpy_cache", None)

    def test_vectorized_without_numpy_raises_clear_error(self, no_numpy):
        with pytest.raises(VectorizedEngineUnavailableError) as err:
            resolve_engine("vectorized")
        message = str(err.value)
        assert "numpy" in message
        assert "reference" in message
        assert ENGINE_ENV in message

    def test_env_selected_vectorized_without_numpy_raises(
        self, no_numpy, monkeypatch
    ):
        monkeypatch.setenv(ENGINE_ENV, "vectorized")
        with pytest.raises(VectorizedEngineUnavailableError):
            resolve_engine()

    def test_reference_without_numpy_still_works(self, no_numpy):
        assert resolve_engine("reference") == ENGINE_REFERENCE

    def test_world_config_surfaces_engine_error(self, no_numpy):
        config = WorldConfig(engine="vectorized")
        region = Region(100.0, 100.0)
        mobility = StaticMobility(
            region, {0: Point(0, 0), 1: Point(10, 10)}
        )
        from repro.sim.world import World

        with pytest.raises(VectorizedEngineUnavailableError):
            World(mobility, lambda node: None, config)

    def test_error_is_a_runtime_error(self):
        assert issubclass(VectorizedEngineUnavailableError, RuntimeError)


class TestScenarioEngineField:
    def test_default_engine_is_none(self):
        assert Scenario().engine is None

    def test_engine_values_accepted(self):
        assert Scenario(engine="reference").engine == "reference"
        assert Scenario(engine="vectorized").engine == "vectorized"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Scenario(engine="warp")

    def test_world_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            WorldConfig(engine="warp")


class TestArrayState:
    def test_round_trip_points(self):
        state = ArrayState((0, 1), [[1.0, 2.0], [3.0, 4.0]])
        assert len(state) == 2
        assert state.point(0) == Point(1.0, 2.0)
        assert state.point(1) == Point(3.0, 4.0)
        assert state.as_points() == {
            0: Point(1.0, 2.0),
            1: Point(3.0, 4.0),
        }
        assert state.index_of(1) == 1

    def test_positions_are_write_protected(self):
        state = ArrayState((0,), [[1.0, 2.0]])
        with pytest.raises(ValueError):
            state.positions[0, 0] = 9.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ArrayState((0,), [[1.0, 2.0, 3.0]])
        with pytest.raises(ValueError):
            ArrayState((0, 1), [[1.0, 2.0]])

    def test_from_mobility(self):
        region = Region(50.0, 50.0)
        mobility = StaticMobility(
            region, {0: Point(1, 2), 1: Point(3, 4)}
        )
        state = ArrayState.from_mobility(mobility, 0.0)
        assert state.ids == (0, 1)
        assert np.array_equal(
            state.positions, np.array([[1.0, 2.0], [3.0, 4.0]])
        )

    def test_unknown_node_raises(self):
        state = ArrayState((0,), [[0.0, 0.0]])
        with pytest.raises(KeyError):
            state.index_of(5)


class TestNeighborServiceEngine:
    def build_world(self, engine=None):
        from repro.baselines.direct import DirectDeliveryProtocol
        from repro.sim.radio import RadioConfig
        from repro.sim.world import World

        region = Region(200.0, 200.0)
        mobility = StaticMobility(
            region, {0: Point(0, 0), 1: Point(50, 0), 2: Point(190, 190)}
        )
        config = WorldConfig(radio=RadioConfig(range_m=100.0), engine=engine)
        return World(
            mobility, lambda node: DirectDeliveryProtocol(), config
        )

    def test_world_defaults_to_reference(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        world = self.build_world()
        assert world.engine == ENGINE_REFERENCE
        assert world.neighbor_service.array_state() is None

    def test_world_picks_up_env_engine(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "vectorized")
        world = self.build_world()
        assert world.engine == ENGINE_VECTORIZED

    def test_vectorized_world_exposes_array_state(self):
        world = self.build_world(engine="vectorized")
        state = world.neighbor_service.array_state()
        assert state is not None
        assert state.ids == (0, 1, 2)
        assert world.neighbor_service.neighbors(0) == {1}

    def test_engines_agree_on_neighbors(self):
        reference = self.build_world(engine="reference")
        vectorized = self.build_world(engine="vectorized")
        for node in (0, 1, 2):
            assert reference.neighbor_service.neighbors(
                node
            ) == vectorized.neighbor_service.neighbors(node)
