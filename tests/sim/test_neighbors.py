"""Tests for the beacon/neighbour service and location tables."""

import pytest

from repro.geometry.primitives import Point
from repro.mobility.base import Region
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.static import StaticMobility
from repro.sim.engine import Simulator
from repro.sim.neighbors import LocationRecord, NeighborService
from repro.sim.radio import RadioConfig


def build_static_service(placements, radius=100.0, beacon_interval=1.0):
    region = Region(1000.0, 1000.0)
    sim = Simulator()
    mobility = StaticMobility(region, placements)
    service = NeighborService(
        sim,
        mobility,
        RadioConfig(range_m=radius),
        beacon_interval=beacon_interval,
    )
    return sim, service


class TestSnapshots:
    def test_initial_snapshot_at_time_zero(self):
        _, service = build_static_service(
            {0: Point(0, 0), 1: Point(50, 0), 2: Point(500, 500)}
        )
        assert service.neighbors(0) == {1}
        assert service.neighbors(2) == set()

    def test_neighbor_positions(self):
        _, service = build_static_service(
            {0: Point(0, 0), 1: Point(50, 0)}
        )
        assert service.neighbor_positions(0) == {1: Point(50, 0)}

    def test_k_hop_from_snapshot(self):
        _, service = build_static_service(
            {0: Point(0, 0), 1: Point(90, 0), 2: Point(180, 0)}
        )
        assert service.k_hop(0, 1) == {1}
        assert service.k_hop(0, 2) == {1, 2}

    def test_epoch_increments_with_beacons(self):
        sim, service = build_static_service({0: Point(0, 0)})
        assert service.epoch == 0
        sim.run(until=3.5)
        assert service.epoch == 3

    def test_snapshot_tracks_movement(self):
        region = Region(1000.0, 300.0)
        sim = Simulator()
        mobility = RandomWaypointMobility([0, 1], region, seed=3)
        service = NeighborService(
            sim, mobility, RadioConfig(range_m=150.0), beacon_interval=1.0
        )
        before = service.beacon_position(0)
        sim.run(until=30.0)
        after = service.beacon_position(0)
        assert before != after

    def test_invalid_beacon_interval(self):
        region = Region(100, 100)
        sim = Simulator()
        mobility = StaticMobility(region, {0: Point(0, 0)})
        with pytest.raises(ValueError):
            NeighborService(
                sim, mobility, RadioConfig(), beacon_interval=0.0
            )

    def test_control_bytes_accounted(self):
        counted = []
        region = Region(100, 100)
        sim = Simulator()
        mobility = StaticMobility(
            region, {0: Point(0, 0), 1: Point(10, 0)}
        )
        NeighborService(
            sim,
            mobility,
            RadioConfig(range_m=50.0),
            on_control_bytes=counted.append,
        )
        sim.run(until=5.0)
        assert sum(counted) > 0


class TestLdtCache:
    def test_ldt_neighbors_subset_of_radio_neighbors(self):
        placements = {
            i: Point(100.0 * (i % 5), 80.0 * (i // 5)) for i in range(15)
        }
        _, service = build_static_service(placements, radius=200.0)
        for node in placements:
            ldt = service.ldt_neighbors(node)
            assert ldt <= service.neighbors(node)

    def test_ldt_graph_is_planar(self):
        from repro.graphs.faces import is_planar_embedding
        from tests.conftest import random_points

        pts = random_points(30, seed=5)
        placements = {i: p for i, p in enumerate(pts)}
        _, service = build_static_service(placements, radius=250.0)
        service.ldt_neighbors(0)  # force cache build
        assert is_planar_embedding(service.ldt_graph())

    def test_cache_invalidated_on_new_epoch(self):
        region = Region(1000.0, 300.0)
        sim = Simulator()
        mobility = RandomWaypointMobility(list(range(10)), region, seed=9)
        service = NeighborService(
            sim, mobility, RadioConfig(range_m=200.0), beacon_interval=1.0
        )
        first = service.ldt_neighbors(0)
        sim.run(until=20.0)
        second = service.ldt_neighbors(0)
        # Not asserting inequality (could coincide) — asserting that the
        # query works after invalidation and reflects the new snapshot.
        assert second <= service.neighbors(0)
        assert isinstance(first, set)


class TestLocationTables:
    def test_beacons_teach_neighbors_locations(self):
        _, service = build_static_service(
            {0: Point(0, 0), 1: Point(50, 0), 2: Point(500, 500)}
        )
        record = service.location_of(0, 1)
        assert record is not None
        assert record.position == Point(50, 0)
        # Node 2 is out of range of everyone: 0 knows nothing about it.
        assert service.location_of(0, 2) is None

    def test_own_location_always_known(self):
        _, service = build_static_service({0: Point(7, 8)})
        record = service.location_of(0, 0)
        assert record is not None
        assert record.position == Point(7, 8)

    def test_learn_location_fresher_wins(self):
        _, service = build_static_service(
            {0: Point(0, 0), 1: Point(50, 0)}
        )
        stale = LocationRecord(position=Point(1, 1), timestamp=-5.0)
        assert not service.learn_location(0, 1, stale)
        fresh = LocationRecord(position=Point(2, 2), timestamp=99.0)
        assert service.learn_location(0, 1, fresh)
        assert service.location_of(0, 1).position == Point(2, 2)

    def test_learn_location_about_unknown_subject(self):
        _, service = build_static_service(
            {0: Point(0, 0), 1: Point(500, 500)}
        )
        record = LocationRecord(position=Point(3, 3), timestamp=1.0)
        assert service.learn_location(0, 1, record)
        assert service.location_of(0, 1).position == Point(3, 3)

    def test_location_timestamps_refresh_with_beacons(self):
        sim, service = build_static_service(
            {0: Point(0, 0), 1: Point(50, 0)}
        )
        sim.run(until=5.0)
        record = service.location_of(0, 1)
        assert record.timestamp == pytest.approx(5.0)
