"""Tests for bounded message stores (FIFO buffer and GLR dual store)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.storage import DualStore, MessageStore, StoreFullError


class TestMessageStore:
    def test_add_and_get(self):
        store = MessageStore()
        store.add("k", "item")
        assert store.get("k") == "item"
        assert "k" in store
        assert len(store) == 1

    def test_insertion_order_preserved(self):
        store = MessageStore()
        for key in "abc":
            store.add(key, key.upper())
        assert store.keys() == ["a", "b", "c"]
        assert store.values() == ["A", "B", "C"]

    def test_fifo_eviction(self):
        store = MessageStore(capacity=2)
        store.add("a", 1)
        store.add("b", 2)
        evicted = store.add("c", 3)
        assert evicted == [1]
        assert store.keys() == ["b", "c"]
        assert store.evictions == 1

    def test_no_evict_mode_raises(self):
        store = MessageStore(capacity=1)
        store.add("a", 1)
        with pytest.raises(StoreFullError):
            store.add("b", 2, evict=False)

    def test_readd_existing_key_keeps_position(self):
        store = MessageStore(capacity=10)
        store.add("a", 1)
        store.add("b", 2)
        store.add("a", 99)
        assert store.keys() == ["a", "b"]
        assert store.get("a") == 99

    def test_pop(self):
        store = MessageStore()
        store.add("a", 1)
        assert store.pop("a") == 1
        assert store.pop("a") is None

    def test_pop_oldest(self):
        store = MessageStore()
        store.add("a", 1)
        store.add("b", 2)
        assert store.pop_oldest() == 1
        assert store.pop_oldest() == 2
        assert store.pop_oldest() is None

    def test_peak_occupancy_tracked(self):
        store = MessageStore()
        for i in range(5):
            store.add(i, i)
        for i in range(5):
            store.pop(i)
        assert store.peak_occupancy == 5
        assert len(store) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MessageStore(capacity=0)

    def test_time_average_occupancy(self):
        store = MessageStore()
        store.sample(0.0)
        store.add("a", 1)
        store.sample(10.0)  # 1 item for 10 s
        store.pop("a")
        store.sample(20.0)  # 0 items for 10 s... sampled at removal
        # Average over [0, 20]: the item was counted for the (0, 10]
        # interval sample -> 10 item-seconds / 20 s = 0.5.
        assert store.time_average_occupancy(20.0) == pytest.approx(0.5)

    @given(st.lists(st.integers(), min_size=1, max_size=60, unique=True))
    def test_capacity_never_exceeded(self, keys):
        store = MessageStore(capacity=7)
        for k in keys:
            store.add(k, k)
            assert len(store) <= 7

    def test_is_full(self):
        store = MessageStore(capacity=1)
        assert not store.is_full
        store.add("a", 1)
        assert store.is_full


class TestDualStore:
    def test_store_then_cache_flow(self):
        dual = DualStore()
        dual.add_to_store("m", "payload")
        assert len(dual.store) == 1
        assert dual.move_to_cache("m")
        assert len(dual.store) == 0
        assert len(dual.cache) == 1
        assert dual.acknowledge("m")
        assert dual.occupancy() == 0

    def test_return_to_store_on_timeout(self):
        dual = DualStore()
        dual.add_to_store("m", "payload")
        dual.move_to_cache("m")
        assert dual.return_to_store("m")
        assert "m" in dual.store
        assert "m" not in dual.cache

    def test_move_missing_key_returns_false(self):
        dual = DualStore()
        assert not dual.move_to_cache("nope")
        assert not dual.return_to_store("nope")
        assert not dual.acknowledge("nope")

    def test_cache_evicted_before_store(self):
        # Paper 3.6: "When storage space is not enough, message in the
        # Cache is dropped first."
        dual = DualStore(capacity=2)
        dual.add_to_store("sent", "A")
        dual.move_to_cache("sent")
        dual.add_to_store("waiting", "B")
        evicted = dual.add_to_store("new", "C")
        assert evicted == ["A"]
        assert "waiting" in dual.store
        assert "new" in dual.store
        assert len(dual.cache) == 0

    def test_store_evicted_when_cache_empty(self):
        dual = DualStore(capacity=2)
        dual.add_to_store("old", "A")
        dual.add_to_store("mid", "B")
        evicted = dual.add_to_store("new", "C")
        assert evicted == ["A"]

    def test_peak_counts_both_areas(self):
        dual = DualStore()
        dual.add_to_store("a", 1)
        dual.move_to_cache("a")
        dual.add_to_store("b", 2)
        assert dual.peak_occupancy == 2

    def test_drop_from_either_area(self):
        dual = DualStore()
        dual.add_to_store("a", 1)
        assert dual.drop("a")
        dual.add_to_store("b", 2)
        dual.move_to_cache("b")
        assert dual.drop("b")
        assert not dual.drop("b")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DualStore(capacity=0)

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=80))
    def test_capacity_invariant_under_mixed_operations(self, ops):
        dual = DualStore(capacity=5)
        for i, op in enumerate(ops):
            if op % 3 == 0:
                dual.add_to_store(f"k{i}", i)
            elif op % 3 == 1 and dual.store.keys():
                dual.move_to_cache(dual.store.keys()[0])
            elif dual.cache.keys():
                dual.return_to_store(dual.cache.keys()[0])
            assert dual.occupancy() <= 5
