"""Integration tests for World wiring and NodeApi scoping."""

import pytest

from repro.core.protocol import GLRProtocol
from repro.geometry.primitives import Point
from repro.mobility.base import Region
from repro.mobility.static import StaticMobility
from repro.sim.messages import Frame, Message
from repro.sim.radio import RadioConfig
from repro.sim.world import Protocol, World, WorldConfig


class RecorderProtocol(Protocol):
    """Minimal protocol that records every callback."""

    name = "recorder"

    def __init__(self):
        super().__init__()
        self.created: list[Message] = []
        self.frames: list[Frame] = []
        self.started = False

    def start(self) -> None:
        self.started = True

    def on_message_created(self, message: Message) -> None:
        self.created.append(message)

    def on_frame(self, frame: Frame) -> None:
        self.frames.append(frame)

    def storage_occupancy(self) -> int:
        return len(self.created)

    def storage_peak(self) -> int:
        return len(self.created)


def build_recorder_world(placements=None, radius=100.0):
    placements = placements or {0: Point(0, 0), 1: Point(50, 0)}
    region = Region(1000.0, 1000.0)
    mobility = StaticMobility(region, placements)
    world = World(
        mobility,
        lambda node: RecorderProtocol(),
        WorldConfig(radio=RadioConfig(range_m=radius), seed=1),
    )
    return world


class TestWorldLifecycle:
    def test_protocols_started_once(self):
        world = build_recorder_world()
        world.run(until=1.0)
        assert all(p.started for p in world.protocols.values())

    def test_message_creation_dispatched_to_source(self):
        world = build_recorder_world()
        world.schedule_message(0, 1, at_time=0.5)
        world.run(until=1.0)
        assert len(world.protocols[0].created) == 1
        assert len(world.protocols[1].created) == 0

    def test_message_seq_increments_per_source(self):
        world = build_recorder_world()
        world.schedule_message(0, 1, at_time=0.1)
        world.schedule_message(0, 1, at_time=0.2)
        world.run(until=1.0)
        seqs = [m.seq for m in world.protocols[0].created]
        assert seqs == [0, 1]

    def test_unknown_endpoint_rejected(self):
        world = build_recorder_world()
        with pytest.raises(KeyError):
            world.schedule_message(0, 99, at_time=1.0)

    def test_metrics_record_created_messages(self):
        world = build_recorder_world()
        world.schedule_message(0, 1, at_time=0.5)
        metrics = world.run(until=1.0)
        assert metrics.messages_created == 1
        assert metrics.messages_delivered == 0

    def test_protocol_name_in_metrics(self):
        world = build_recorder_world()
        metrics = world.run(until=1.0, protocol_name="custom")
        assert metrics.protocol == "custom"
        world2 = build_recorder_world()
        assert world2.run(until=1.0).protocol == "recorder"


class TestNodeApi:
    def test_api_scoped_to_node(self):
        world = build_recorder_world(
            {0: Point(0, 0), 1: Point(50, 0), 2: Point(500, 500)}
        )
        api0 = world.protocols[0].api
        api2 = world.protocols[2].api
        assert api0.neighbors() == {1}
        assert api2.neighbors() == set()

    def test_own_position_is_true_position(self):
        world = build_recorder_world()
        assert world.protocols[0].api.position() == Point(0, 0)

    def test_environment_facts(self):
        world = build_recorder_world()
        api = world.protocols[0].api
        assert api.n_nodes == 2
        assert api.region_area == 1_000_000.0

    def test_send_through_mac_delivers(self):
        from repro.sim.messages import data_frame, MessageCopy

        world = build_recorder_world()
        msg = Message.create(source=0, dest=1, seq=0, created_at=0.0)
        copy = MessageCopy(message=msg, branch="max")
        world.protocols[0].api.send(data_frame(0, 1, copy))
        world.run(until=1.0)
        assert len(world.protocols[1].frames) == 1

    def test_node_rngs_differ(self):
        world = build_recorder_world()
        a = world.protocols[0].api.rng.random()
        b = world.protocols[1].api.rng.random()
        assert a != b

    def test_glr_uses_world_config_radius_for_decision(self):
        # End-to-end check that NodeApi exposes the radio range GLR's
        # Algorithm 1 needs.
        region = Region(1500.0, 300.0)
        placements = {i: Point(10.0 * i, 10.0) for i in range(50)}
        mobility = StaticMobility(region, placements)
        world = World(
            mobility,
            lambda node: GLRProtocol(),
            WorldConfig(radio=RadioConfig(range_m=50.0), seed=1),
        )
        world.schedule_message(0, 49, at_time=0.5)
        world.sim.run(until=0.6)
        source = world.protocols[0]
        # Sparse radius at 50 m -> Algorithm 1 spawns 3 copies.
        assert source.dual.occupancy() + len(source.dual.cache) >= 1
        branches = {cid[1] for cid in source.dual.store.keys()}
        assert "max" in branches
