"""Tests for direct delivery, first contact, and spray-and-wait."""

import pytest

from repro.baselines.direct import DirectDeliveryProtocol
from repro.baselines.first_contact import FirstContactProtocol
from repro.baselines.spray_and_wait import (
    SprayAndWaitConfig,
    SprayAndWaitProtocol,
)
from repro.experiments.runner import build_world
from repro.experiments.scenarios import Scenario
from repro.geometry.primitives import Point
from repro.mobility.base import Region
from repro.mobility.static import StaticMobility
from repro.sim.radio import RadioConfig
from repro.sim.world import World, WorldConfig


def build_static(factory, placements, radius=100.0, seed=1):
    region = Region(1000.0, 1000.0)
    mobility = StaticMobility(region, placements)
    return World(
        mobility,
        factory,
        WorldConfig(radio=RadioConfig(range_m=radius), seed=seed),
    )


class TestDirectDelivery:
    def test_delivers_to_direct_neighbor(self):
        world = build_static(
            lambda n: DirectDeliveryProtocol(),
            {0: Point(0, 0), 1: Point(50, 0)},
        )
        world.schedule_message(0, 1, at_time=1.0)
        metrics = world.run(until=30.0)
        assert metrics.messages_delivered == 1
        assert metrics.average_hops == 1

    def test_never_relays(self):
        # 0 - 1 - 2 chain: direct delivery must NOT use node 1.
        world = build_static(
            lambda n: DirectDeliveryProtocol(),
            {0: Point(0, 0), 1: Point(80, 0), 2: Point(160, 0)},
        )
        world.schedule_message(0, 2, at_time=1.0)
        metrics = world.run(until=60.0)
        assert metrics.messages_delivered == 0
        assert world.protocols[1].storage_occupancy() == 0

    def test_source_clears_buffer_after_handoff(self):
        world = build_static(
            lambda n: DirectDeliveryProtocol(),
            {0: Point(0, 0), 1: Point(50, 0)},
        )
        world.schedule_message(0, 1, at_time=1.0)
        world.run(until=30.0)
        assert world.protocols[0].storage_occupancy() == 0

    @pytest.mark.slow
    def test_mobile_delivery_eventually(self):
        scenario = Scenario(
            radius=150.0, message_count=10, sim_time=400.0, seed=5
        )
        world = build_world(scenario, "direct")
        metrics = world.run(until=scenario.sim_time, protocol_name="direct")
        assert metrics.messages_delivered >= 1


class TestFirstContact:
    def test_hands_off_to_first_contact(self):
        world = build_static(
            lambda n: FirstContactProtocol(),
            {0: Point(0, 0), 1: Point(80, 0), 2: Point(160, 0)},
        )
        world.schedule_message(0, 2, at_time=1.0)
        metrics = world.run(until=60.0)
        # Single copy random-walks the chain; with a static chain it
        # reaches node 2 through node 1.
        assert metrics.messages_delivered == 1

    def test_single_copy_invariant(self):
        world = build_static(
            lambda n: FirstContactProtocol(),
            {0: Point(0, 0), 1: Point(80, 0), 2: Point(500, 500)},
        )
        world.schedule_message(0, 2, at_time=1.0)
        world.run(until=10.0)
        total = sum(
            p.storage_occupancy() for p in world.protocols.values()
        )
        assert total <= 1


class TestSprayAndWait:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SprayAndWaitConfig(initial_copies=0)
        with pytest.raises(ValueError):
            SprayAndWaitConfig(buffer_limit=0)

    def test_direct_delivery_in_wait_phase(self):
        world = build_static(
            lambda n: SprayAndWaitProtocol(SprayAndWaitConfig(initial_copies=1)),
            {0: Point(0, 0), 1: Point(50, 0)},
        )
        world.schedule_message(0, 1, at_time=1.0)
        metrics = world.run(until=30.0)
        assert metrics.messages_delivered == 1

    def test_binary_spray_halves_tickets(self):
        world = build_static(
            lambda n: SprayAndWaitProtocol(SprayAndWaitConfig(initial_copies=8)),
            {0: Point(0, 0), 1: Point(50, 0), 2: Point(600, 600)},
        )
        world.schedule_message(0, 2, at_time=1.0)
        world.run(until=10.0)
        source_entry = world.protocols[0].buffer.values()
        peer_entry = world.protocols[1].buffer.values()
        assert source_entry and peer_entry
        assert source_entry[0].tickets == 4
        assert peer_entry[0].tickets == 4

    def test_wait_phase_does_not_spray_further(self):
        world = build_static(
            lambda n: SprayAndWaitProtocol(SprayAndWaitConfig(initial_copies=2)),
            {
                0: Point(0, 0),
                1: Point(50, 0),
                2: Point(90, 0),
                3: Point(600, 600),
            },
        )
        world.schedule_message(0, 3, at_time=1.0)
        world.run(until=30.0)
        holders = [
            p for p in world.protocols.values() if p.storage_occupancy()
        ]
        # 2 tickets -> at most 2 holders, each in wait phase.
        assert len(holders) <= 2

    @pytest.mark.slow
    def test_mobile_delivery(self):
        scenario = Scenario(
            radius=100.0, message_count=20, sim_time=300.0, seed=5
        )
        world = build_world(scenario, "spray_and_wait")
        metrics = world.run(
            until=scenario.sim_time, protocol_name="spray_and_wait"
        )
        assert metrics.delivery_ratio >= 0.5
