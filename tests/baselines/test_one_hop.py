"""Tests for the one-hop-information geographic baseline."""

import pytest

from repro.baselines.one_hop import OneHopConfig, OneHopProtocol
from repro.experiments.protocols import ProtocolConfig, sweepable_params
from repro.experiments.runner import run_replicates, run_single
from repro.experiments.scenarios import Scenario

SMALL = Scenario(
    n_nodes=20,
    active_nodes=12,
    message_count=30,
    sim_time=180.0,
    seed=5,
)


class TestOneHopConfig:
    def test_defaults(self):
        config = OneHopConfig()
        assert config.tick_interval == 1.0
        assert config.buffer_limit is None
        assert config.progress_margin_m == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OneHopConfig(tick_interval=0.0)
        with pytest.raises(ValueError):
            OneHopConfig(buffer_limit=0)
        with pytest.raises(ValueError):
            OneHopConfig(progress_margin_m=-1.0)

    def test_sweepable_params(self):
        assert sweepable_params("one_hop") == [
            "buffer_limit",
            "progress_margin_m",
            "tick_interval",
        ]

    def test_protocol_config_builds(self):
        config = ProtocolConfig.of("one_hop", progress_margin_m=5)
        built = config.build()
        assert isinstance(built, OneHopConfig)
        assert built.progress_margin_m == 5


class TestOneHopProtocol:
    def test_runs_and_delivers(self):
        metrics = run_single(SMALL, "one_hop")
        assert metrics.protocol == "one_hop"
        assert metrics.delivery_ratio > 0.0

    def test_deterministic(self):
        assert run_single(SMALL, "one_hop") == run_single(SMALL, "one_hop")

    def test_serial_parallel_equivalence(self):
        serial = run_replicates(SMALL, "one_hop", runs=2, workers=1)
        parallel = run_replicates(SMALL, "one_hop", runs=2, workers=2)
        assert serial == parallel

    def test_single_copy_storage(self):
        # One-hop keeps exactly one custodian per message: total held
        # copies across the network never exceed undelivered messages.
        from repro.experiments.runner import build_world

        world = build_world(SMALL, "one_hop")
        metrics = world.run(until=SMALL.sim_time, protocol_name="one_hop")
        held = sum(
            p.storage_occupancy() for p in world.protocols.values()
        )
        assert held <= metrics.messages_created

    def test_greedy_forwarding_happens(self):
        from repro.experiments.runner import build_world

        world = build_world(SMALL, "one_hop")
        world.run(until=SMALL.sim_time, protocol_name="one_hop")
        assert (
            sum(p.greedy_forwards for p in world.protocols.values()) > 0
        )

    def test_buffer_limit_respected(self):
        from repro.experiments.runner import build_world

        world = build_world(SMALL, "one_hop", buffer_limit=2)
        world.run(until=SMALL.sim_time, protocol_name="one_hop")
        for protocol in world.protocols.values():
            assert protocol.storage_peak() <= 2
