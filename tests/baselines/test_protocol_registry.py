"""Tests for the protocol registry and the unified config API."""

import warnings

import pytest

from repro.baselines.direct import DirectDeliveryProtocol
from repro.baselines.epidemic import EpidemicConfig, EpidemicProtocol
from repro.baselines.one_hop import OneHopConfig, OneHopProtocol
from repro.baselines.registry import (
    available_protocols,
    protocol_entry,
    protocol_factory,
    register_protocol,
    resolve_config,
    resolve_protocol,
)
from repro.baselines.spray_and_wait import SprayAndWaitConfig
from repro.core.protocol import GLRConfig, GLRProtocol
from repro.experiments.protocols import ProtocolConfig, sweepable_protocols
from repro.experiments.runner import resolve_run_config, run_single
from repro.experiments.scenarios import Scenario

SMALL = Scenario(
    n_nodes=12,
    active_nodes=8,
    message_count=16,
    sim_time=60.0,
    seed=11,
)


class TestRegistry:
    def test_builtins_present(self):
        assert {
            "glr",
            "epidemic",
            "epidemic_receipts",
            "spray_and_wait",
            "one_hop",
            "direct",
            "first_contact",
        } <= set(available_protocols())

    def test_aliases(self):
        assert resolve_protocol("snw") == "spray_and_wait"
        assert resolve_protocol("spray") == "spray_and_wait"
        assert resolve_protocol("onehop") == "one_hop"
        assert resolve_protocol("One-Hop") == "one_hop"

    def test_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            resolve_protocol("carrier-pigeon")

    def test_sweepable_protocols_derive_from_registry(self):
        assert sweepable_protocols() == available_protocols()

    def test_register_buffer_field_must_exist(self):
        with pytest.raises(ValueError, match="has no field"):
            register_protocol(
                "test_bad",
                lambda config, buffer_limit: None,
                config_class=EpidemicConfig,
                buffer_field="nonexistent",
            )

    def test_register_buffer_field_requires_config_class(self):
        with pytest.raises(ValueError, match="requires a config_class"):
            register_protocol(
                "test_bad",
                lambda config, buffer_limit: None,
                buffer_field="buffer_limit",
            )

    def test_registration_makes_protocol_sweepable(self):
        from repro.baselines.registry import _ALIASES, _REGISTRY

        register_protocol(
            "test_proto",
            lambda config, buffer_limit: EpidemicProtocol(config),
            config_class=EpidemicConfig,
            buffer_field="buffer_limit",
            aliases=("tp",),
        )
        try:
            assert "test_proto" in available_protocols()
            assert "test_proto" in sweepable_protocols()
            assert resolve_protocol("tp") == "test_proto"
            config = ProtocolConfig.of("test_proto", tick_interval=2.0)
            assert isinstance(config.build(), EpidemicConfig)
        finally:
            _REGISTRY.pop("test_proto", None)
            _ALIASES.pop("tp", None)


class TestBufferFallback:
    """The per-protocol buffer_limit fallback is hoisted into one place."""

    def test_fills_unset_field(self):
        config = resolve_config("epidemic", None, buffer_limit=5)
        assert config.buffer_limit == 5
        config = resolve_config("glr", None, buffer_limit=7)
        assert config.storage_limit == 7
        config = resolve_config("one_hop", None, buffer_limit=3)
        assert config.buffer_limit == 3

    def test_explicit_config_value_wins(self):
        config = resolve_config(
            "epidemic", EpidemicConfig(buffer_limit=2), buffer_limit=5
        )
        assert config.buffer_limit == 2

    def test_none_limit_leaves_default(self):
        assert resolve_config("epidemic").buffer_limit is None
        assert resolve_config("glr").storage_limit is None

    def test_parameterless_protocol_rejects_config(self):
        with pytest.raises(ValueError, match="takes no config"):
            resolve_config("direct", EpidemicConfig())

    def test_wrong_config_type_rejected(self):
        with pytest.raises(ValueError, match="expects a"):
            resolve_config("epidemic", GLRConfig())


class TestFactory:
    def test_builds_correct_classes(self):
        assert isinstance(protocol_factory("glr")(0), GLRProtocol)
        assert isinstance(protocol_factory("epidemic")(0), EpidemicProtocol)
        assert isinstance(protocol_factory("one_hop")(0), OneHopProtocol)
        assert isinstance(
            protocol_factory("direct", buffer_limit=4)(0),
            DirectDeliveryProtocol,
        )

    def test_factory_resolves_config_once(self):
        factory = protocol_factory("epidemic", buffer_limit=9)
        a, b = factory(0), factory(1)
        assert a is not b
        assert a.config is b.config
        assert a.config.buffer_limit == 9

    def test_entry_exposes_metadata(self):
        entry = protocol_entry("glr")
        assert entry.config_class is GLRConfig
        assert entry.buffer_field == "storage_limit"
        assert "location_mode" in entry.non_sweepable


class TestLegacyShimParity:
    """Old per-protocol kwargs and the unified path build identically."""

    def test_resolve_run_config_selects_matching_legacy(self):
        glr = GLRConfig(custody=False)
        epidemic = EpidemicConfig(tick_interval=2.0)
        spray = SprayAndWaitConfig(initial_copies=4)
        assert (
            resolve_run_config(
                "glr",
                glr_config=glr,
                epidemic_config=epidemic,
                spray_config=spray,
            )
            is glr
        )
        assert (
            resolve_run_config("epidemic", epidemic_config=epidemic)
            is epidemic
        )
        assert resolve_run_config("snw", spray_config=spray) is spray
        # Mismatched legacy configs are ignored (old chain behaviour).
        assert resolve_run_config("direct", glr_config=glr) is None

    def test_protocol_config_conflicts_with_legacy(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_run_config(
                "glr",
                protocol_config=GLRConfig(),
                glr_config=GLRConfig(),
            )

    def test_declarative_config_must_match_protocol(self):
        with pytest.raises(ValueError, match="requests"):
            resolve_run_config(
                "epidemic", protocol_config=ProtocolConfig.of("glr")
            )

    def test_declarative_config_builds(self):
        config = resolve_run_config(
            "glr", protocol_config=ProtocolConfig.of("glr", custody=False)
        )
        assert isinstance(config, GLRConfig)
        assert config.custody is False

    def test_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="protocol_config"):
            resolve_run_config(
                "glr", glr_config=GLRConfig(), warn=True
            )

    @pytest.mark.parametrize(
        ("protocol", "kwarg", "config"),
        [
            ("glr", "glr_config", GLRConfig(custody=False)),
            ("epidemic", "epidemic_config", EpidemicConfig(tick_interval=2.0)),
            (
                "spray_and_wait",
                "spray_config",
                SprayAndWaitConfig(initial_copies=4),
            ),
        ],
    )
    def test_run_single_parity_old_vs_new(self, protocol, kwarg, config):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_legacy = run_single(SMALL, protocol, **{kwarg: config})
        via_unified = run_single(SMALL, protocol, protocol_config=config)
        assert via_legacy == via_unified

    @pytest.mark.parametrize(
        "protocol",
        [
            "glr",
            "epidemic",
            "epidemic_receipts",
            "spray_and_wait",
            "one_hop",
            "direct",
            "first_contact",
        ],
    )
    def test_every_protocol_runs_through_registry(self, protocol):
        metrics = run_single(SMALL, protocol)
        assert metrics.protocol == protocol
        # Default-config spelling parity: None and a default-constructed
        # concrete config build the same world.
        entry = protocol_entry(protocol)
        if entry.config_class is not None:
            explicit = run_single(
                SMALL, protocol, protocol_config=entry.config_class()
            )
            assert explicit == metrics
