"""Tests for epidemic routing."""

import pytest

from repro.baselines.epidemic import EpidemicConfig, EpidemicProtocol
from repro.experiments.runner import build_world
from repro.experiments.scenarios import Scenario
from repro.geometry.primitives import Point
from repro.mobility.base import Region
from repro.mobility.static import StaticMobility
from repro.sim.radio import RadioConfig
from repro.sim.world import World, WorldConfig


def build_static_epidemic(placements, radius=100.0, config=None, seed=1):
    region = Region(1000.0, 1000.0)
    mobility = StaticMobility(region, placements)
    world = World(
        mobility,
        lambda node: EpidemicProtocol(config or EpidemicConfig()),
        WorldConfig(radio=RadioConfig(range_m=radius), seed=seed),
    )
    return world


class TestConfig:
    def test_defaults_valid(self):
        EpidemicConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"buffer_limit": 0},
            {"anti_entropy_interval": 0.0},
            {"request_batch": 0},
            {"tick_interval": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EpidemicConfig(**kwargs)


class TestExchange:
    def test_direct_contact_delivery(self):
        world = build_static_epidemic({0: Point(0, 0), 1: Point(50, 0)})
        world.schedule_message(0, 1, at_time=1.0)
        metrics = world.run(until=30.0)
        assert metrics.messages_delivered == 1

    def test_summary_request_data_flow(self):
        world = build_static_epidemic({0: Point(0, 0), 1: Point(50, 0)})
        world.schedule_message(0, 1, at_time=1.0)
        world.run(until=30.0)
        sender = world.protocols[0]
        receiver = world.protocols[1]
        assert sender.summaries_sent > 0
        assert receiver.requests_sent > 0
        assert sender.data_sent >= 1

    def test_messages_never_cleared(self):
        # Epidemic keeps everything (paper: "the messages are never
        # cleared") — both nodes end up holding the message.
        world = build_static_epidemic({0: Point(0, 0), 1: Point(50, 0)})
        world.schedule_message(0, 1, at_time=1.0)
        world.run(until=30.0)
        assert world.protocols[0].storage_occupancy() == 1
        assert world.protocols[1].storage_occupancy() == 1

    def test_flood_reaches_all_nodes_in_component(self):
        placements = {i: Point(80.0 * i, 0.0) for i in range(5)}
        world = build_static_epidemic(placements)
        world.schedule_message(0, 4, at_time=1.0)
        metrics = world.run(until=60.0)
        assert metrics.messages_delivered == 1
        for protocol in world.protocols.values():
            assert protocol.storage_occupancy() == 1

    def test_buffer_limit_fifo_drops(self):
        config = EpidemicConfig(buffer_limit=3)
        world = build_static_epidemic(
            {0: Point(0, 0), 1: Point(50, 0)}, config=config
        )
        for i in range(6):
            world.schedule_message(0, 1, at_time=1.0 + i * 0.1)
        world.run(until=5.0)
        assert world.protocols[0].storage_occupancy() <= 3
        assert world.protocols[0].buffer.evictions >= 3

    def test_anti_entropy_throttles_summaries(self):
        config = EpidemicConfig(anti_entropy_interval=1000.0)
        world = build_static_epidemic(
            {0: Point(0, 0), 1: Point(50, 0)}, config=config
        )
        world.schedule_message(0, 1, at_time=1.0)
        world.run(until=60.0)
        # One initial exchange per direction at most.
        assert world.protocols[0].summaries_sent <= 1

    def test_request_batch_caps_requests(self):
        config = EpidemicConfig(request_batch=2)
        world = build_static_epidemic(
            {0: Point(0, 0), 1: Point(50, 0)}, config=config
        )
        for i in range(5):
            world.schedule_message(0, 1, at_time=1.0 + i * 0.01)
        world.run(until=4.0)
        # Receiver asked for at most 2 messages in its first request.
        assert world.protocols[1].storage_occupancy() <= 5


class TestMobileEndToEnd:
    @pytest.mark.slow
    def test_high_delivery_in_paper_scenario(self):
        scenario = Scenario(
            radius=100.0, message_count=30, sim_time=240.0, seed=5
        )
        world = build_world(scenario, "epidemic")
        metrics = world.run(until=scenario.sim_time, protocol_name="epidemic")
        assert metrics.delivery_ratio >= 0.9

    @pytest.mark.slow
    def test_storage_approaches_messages_in_transit(self):
        # Paper 3.7: epidemic storage ~= number of messages in transit.
        scenario = Scenario(
            radius=100.0, message_count=30, sim_time=300.0, seed=5
        )
        world = build_world(scenario, "epidemic")
        metrics = world.run(until=scenario.sim_time, protocol_name="epidemic")
        assert metrics.max_peak_storage >= 25
