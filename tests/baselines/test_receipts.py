"""Tests for epidemic routing with delivery receipts."""


from repro.baselines.receipts import (
    ReceiptEpidemicConfig,
    ReceiptEpidemicProtocol,
    ReceiptMode,
)
from repro.geometry.primitives import Point
from repro.mobility.base import Region
from repro.mobility.static import StaticMobility
from repro.sim.radio import RadioConfig
from repro.sim.world import World, WorldConfig


def build_world(placements, mode=ReceiptMode.ACTIVE, radius=100.0):
    region = Region(1000.0, 1000.0)
    mobility = StaticMobility(region, placements)
    config = ReceiptEpidemicConfig(receipt_mode=mode)
    return World(
        mobility,
        lambda node: ReceiptEpidemicProtocol(config),
        WorldConfig(radio=RadioConfig(range_m=radius), seed=1),
    )


CHAIN = {0: Point(0, 0), 1: Point(80, 0), 2: Point(160, 0)}


class TestActiveReceipts:
    def test_delivery_still_works(self):
        world = build_world(CHAIN)
        world.schedule_message(0, 2, at_time=1.0)
        metrics = world.run(until=60.0)
        assert metrics.messages_delivered == 1

    def test_delivered_messages_cleared_from_buffers(self):
        world = build_world(CHAIN)
        world.schedule_message(0, 2, at_time=1.0)
        world.run(until=120.0)
        # With active receipts every node eventually drops the message
        # (plain epidemic would hold it at all three nodes forever).
        total_buffered = sum(
            p.storage_occupancy() for p in world.protocols.values()
        )
        assert total_buffered == 0
        # Every node on the chain learned the receipt.
        assert all(
            len(p.receipts) == 1 for p in world.protocols.values()
        )

    def test_destination_never_rebuffers(self):
        world = build_world(CHAIN)
        world.schedule_message(0, 2, at_time=1.0)
        world.run(until=120.0)
        assert world.protocols[2].storage_occupancy() == 0

    def test_cleared_counter_increments(self):
        world = build_world(CHAIN)
        world.schedule_message(0, 2, at_time=1.0)
        world.run(until=120.0)
        cleared = sum(
            p.messages_cleared for p in world.protocols.values()
        )
        assert cleared >= 1


class TestPassiveReceipts:
    def test_delivery_works(self):
        world = build_world(CHAIN, mode=ReceiptMode.PASSIVE)
        world.schedule_message(0, 2, at_time=1.0)
        metrics = world.run(until=60.0)
        assert metrics.messages_delivered == 1

    def test_receipt_frames_sent_on_stale_offer(self):
        world = build_world(CHAIN, mode=ReceiptMode.PASSIVE)
        world.schedule_message(0, 2, at_time=1.0)
        world.run(until=120.0)
        receipt_frames = sum(
            p.receipt_frames_sent for p in world.protocols.values()
        )
        # Relays keep offering the message; the destination answers
        # with passive receipts.
        assert receipt_frames >= 1

    def test_relays_eventually_clear(self):
        world = build_world(CHAIN, mode=ReceiptMode.PASSIVE)
        world.schedule_message(0, 2, at_time=1.0)
        world.run(until=200.0)
        # Node 1 keeps summarizing to 2; 2's passive receipt clears 1.
        assert world.protocols[1].storage_occupancy() == 0


class TestComparisonAgainstPlainEpidemic:
    def test_receipts_reduce_storage(self):
        from repro.baselines.epidemic import EpidemicProtocol

        region = Region(1000.0, 1000.0)
        placements = {i: Point(70.0 * i, 0.0) for i in range(6)}

        def run(factory):
            world = World(
                StaticMobility(region, placements),
                factory,
                WorldConfig(radio=RadioConfig(range_m=100.0), seed=1),
            )
            for i in range(5):
                world.schedule_message(0, 5, at_time=1.0 + 0.2 * i)
            return world.run(until=200.0)

        plain = run(lambda n: EpidemicProtocol())
        receipts = run(lambda n: ReceiptEpidemicProtocol())
        assert receipts.messages_delivered == plain.messages_delivered
        assert (
            receipts.time_average_storage < plain.time_average_storage
        )
