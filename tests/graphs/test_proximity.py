"""Tests for Gabriel and relative-neighbourhood graphs."""

import pytest

from repro.geometry.primitives import Point
from repro.graphs.faces import is_planar_embedding
from repro.graphs.gabriel import gabriel_graph
from repro.graphs.rng import relative_neighborhood_graph
from repro.graphs.udg import unit_disk_graph
from repro.geometry.delaunay import delaunay_edges

from tests.conftest import random_points


def positions_of(pts):
    return {i: p for i, p in enumerate(pts)}


class TestGabriel:
    def test_blocking_point_removes_edge(self):
        # c sits inside the diameter disk of ab.
        positions = {
            "a": Point(0, 0),
            "b": Point(10, 0),
            "c": Point(5, 1),
        }
        g = gabriel_graph(positions)
        assert "b" not in g.neighbors("a")

    def test_unblocked_edge_survives(self):
        positions = {
            "a": Point(0, 0),
            "b": Point(10, 0),
            "c": Point(5, 20),
        }
        g = gabriel_graph(positions)
        assert "b" in g.neighbors("a")

    def test_radius_restriction(self):
        positions = {"a": Point(0, 0), "b": Point(10, 0)}
        assert gabriel_graph(positions, radius=5.0).edge_count() == 0
        assert gabriel_graph(positions, radius=15.0).edge_count() == 1

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_gabriel_subset_of_delaunay(self, seed):
        pts = random_points(30, seed)
        g = gabriel_graph(positions_of(pts))
        del_edges = delaunay_edges(pts)
        for u, v in g.edges():
            assert (min(u, v), max(u, v)) in del_edges

    @pytest.mark.parametrize("seed", [4, 5])
    def test_gabriel_is_planar(self, seed):
        pts = random_points(30, seed)
        assert is_planar_embedding(gabriel_graph(positions_of(pts)))


class TestRNG:
    def test_lune_point_removes_edge(self):
        # c is closer to both a and b than they are to each other.
        positions = {
            "a": Point(0, 0),
            "b": Point(10, 0),
            "c": Point(5, 2),
        }
        g = relative_neighborhood_graph(positions)
        assert "b" not in g.neighbors("a")

    def test_no_lune_point_keeps_edge(self):
        positions = {
            "a": Point(0, 0),
            "b": Point(10, 0),
            "c": Point(20, 20),
        }
        g = relative_neighborhood_graph(positions)
        assert "b" in g.neighbors("a")

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_rng_subset_of_gabriel(self, seed):
        pts = random_points(30, seed)
        positions = positions_of(pts)
        rng_edges = relative_neighborhood_graph(positions).edges()
        gabriel_edges = gabriel_graph(positions).edges()
        assert rng_edges <= gabriel_edges

    @pytest.mark.parametrize("seed", [1, 2])
    def test_rng_connected_when_udg_connected(self, seed):
        from repro.graphs.connectivity import is_connected

        pts = random_points(30, seed, side=300.0)
        positions = positions_of(pts)
        udg = unit_disk_graph(positions, 150.0)
        if not is_connected(udg):
            pytest.skip("random instance not connected")
        rng = relative_neighborhood_graph(positions, radius=150.0)
        assert is_connected(rng)

    def test_radius_restriction(self):
        positions = {"a": Point(0, 0), "b": Point(10, 0)}
        assert (
            relative_neighborhood_graph(positions, radius=5.0).edge_count()
            == 0
        )
