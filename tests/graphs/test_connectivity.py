"""Tests for connectivity analysis and the Georgiou bound."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.primitives import Point
from repro.graphs.connectivity import (
    average_degree,
    connected_components,
    connectivity_confidence,
    critical_radius,
    density_report,
    is_connected,
    largest_component_fraction,
    reachable_pair_fraction,
    shortest_path_hops,
)
from repro.graphs.udg import SpatialGraph, unit_disk_graph

from tests.conftest import random_points


def chain_graph(n: int) -> SpatialGraph:
    g = SpatialGraph()
    for i in range(n):
        g.add_node(i, Point(float(i), 0))
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestComponents:
    def test_single_chain_is_connected(self):
        assert is_connected(chain_graph(5))

    def test_two_components(self):
        g = chain_graph(4)
        g.remove_edge(1, 2)
        comps = connected_components(g)
        assert len(comps) == 2
        assert {frozenset(c) for c in comps} == {
            frozenset({0, 1}),
            frozenset({2, 3}),
        }

    def test_components_sorted_by_size(self):
        g = SpatialGraph()
        for i in range(5):
            g.add_node(i, Point(float(i), 0))
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        comps = connected_components(g)
        assert len(comps[0]) == 3

    def test_empty_graph_connected(self):
        assert is_connected(SpatialGraph())

    def test_largest_component_fraction(self):
        g = chain_graph(4)
        g.remove_edge(2, 3)
        assert largest_component_fraction(g) == pytest.approx(0.75)

    def test_reachable_pair_fraction_full(self):
        assert reachable_pair_fraction(chain_graph(4)) == pytest.approx(1.0)

    def test_reachable_pair_fraction_split(self):
        g = chain_graph(4)
        g.remove_edge(1, 2)
        # 2 components of 2: reachable ordered pairs 2*2=4 of 12.
        assert reachable_pair_fraction(g) == pytest.approx(4 / 12)


class TestShortestPath:
    def test_hops_along_chain(self):
        assert shortest_path_hops(chain_graph(5), 0, 4) == 4

    def test_same_node_zero(self):
        assert shortest_path_hops(chain_graph(3), 1, 1) == 0

    def test_disconnected_none(self):
        g = chain_graph(4)
        g.remove_edge(1, 2)
        assert shortest_path_hops(g, 0, 3) is None


class TestGeorgiouBound:
    def test_critical_radius_formula(self):
        # Unit area: r = sqrt((ln n + ln s) / (n pi)).
        n, s = 50, 10.0
        expected = math.sqrt((math.log(n) + math.log(s)) / (n * math.pi))
        assert critical_radius(n, s) == pytest.approx(expected)

    def test_area_scaling(self):
        assert critical_radius(50, 10.0, area=4.0) == pytest.approx(
            2.0 * critical_radius(50, 10.0, area=1.0)
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            critical_radius(1, 10.0)
        with pytest.raises(ValueError):
            critical_radius(50, 1.0)
        with pytest.raises(ValueError):
            critical_radius(50, 10.0, area=0.0)

    def test_confidence_inverts_radius(self):
        n, area = 50, 450_000.0
        for s in (5.0, 50.0, 500.0):
            r = critical_radius(n, s, area)
            conf = connectivity_confidence(n, r, area)
            assert conf == pytest.approx(1.0 - 1.0 / s, rel=1e-6)

    def test_paper_scenario_regimes(self):
        # 50 nodes in 1500 x 300: sparse at 50/100 m, confident at
        # 150 m+ — this is what makes Algorithm 1 pick 3 vs 1 copies.
        area = 1500.0 * 300.0
        assert connectivity_confidence(50, 50.0, area) == 0.0
        assert connectivity_confidence(50, 100.0, area) == 0.0
        assert connectivity_confidence(50, 150.0, area) > 0.9
        assert connectivity_confidence(50, 250.0, area) > 0.99

    @given(st.floats(min_value=1.0, max_value=500.0))
    def test_confidence_monotone_in_radius(self, radius):
        area = 450_000.0
        c1 = connectivity_confidence(50, radius, area)
        c2 = connectivity_confidence(50, radius * 1.1, area)
        assert c2 >= c1

    def test_confidence_rejects_bad_input(self):
        with pytest.raises(ValueError):
            connectivity_confidence(1, 100.0)
        with pytest.raises(ValueError):
            connectivity_confidence(50, -1.0)

    def test_empirical_connectivity_rises_with_confidence(self):
        # The bound is asymptotic, so at n = 50 it is optimistic in
        # absolute terms; what must hold is that radii certified at
        # higher confidence are empirically connected more often, and
        # that high-confidence radii are usually connected.
        area = 1000.0 * 1000.0
        rates = []
        for s in (2.0, 1000.0):
            radius = critical_radius(50, s, area)
            connected = 0
            trials = 20
            for seed in range(trials):
                pts = random_points(50, seed)
                g = unit_disk_graph(
                    {i: p for i, p in enumerate(pts)}, radius
                )
                connected += is_connected(g)
            rates.append(connected / trials)
        assert rates[1] > rates[0]
        assert rates[1] >= 0.8


class TestDegreeAndDensity:
    def test_average_degree(self):
        assert average_degree(chain_graph(3)) == pytest.approx(4 / 3)

    def test_average_degree_empty(self):
        assert average_degree(SpatialGraph()) == 0.0

    def test_density_report_fields(self):
        report = density_report({0: None, 1: None}, 100.0, 10_000.0)
        assert report["nodes"] == 2.0
        assert report["radius"] == 100.0
        assert "connectivity_confidence" in report
