"""Tests for DSTD tree extraction (MaxDSTD / MinDSTD / MidDSTD)."""

import pytest

from repro.geometry.primitives import Point, distance
from repro.graphs.trees import (
    Branch,
    branch_assignment,
    dstd_next_hop,
    extract_dstd_path,
    extract_dstd_tree,
    progress_candidates,
    tree_edge_set,
)
from repro.graphs.udg import SpatialGraph

DEST = Point(100.0, 0.0)
ME = Point(0.0, 0.0)


@pytest.fixture
def neighbors():
    # Three neighbours with distinct progress toward DEST at (100, 0).
    return {
        "best": Point(30, 0),  # dist 70 — max progress
        "mid": Point(20, 0),  # dist 80
        "worst": Point(10, 0),  # dist 90 — min (but positive) progress
        "backward": Point(-10, 0),  # dist 110 — no progress
    }


class TestProgressCandidates:
    def test_only_closer_neighbors(self, neighbors):
        cands = progress_candidates(ME, DEST, neighbors)
        assert [c[0] for c in cands] == ["best", "mid", "worst"]

    def test_empty_when_no_progress(self):
        cands = progress_candidates(
            ME, DEST, {"backward": Point(-10, 0)}
        )
        assert cands == []

    def test_min_progress_margin_filters(self, neighbors):
        # Margin 15 m: own distance 100, so candidates must be < 85.
        cands = progress_candidates(ME, DEST, neighbors, min_progress=15.0)
        assert [c[0] for c in cands] == ["best", "mid"]

    def test_deterministic_tiebreak(self):
        tied = {"a": Point(30, 5), "z": Point(30, -5)}
        cands = progress_candidates(ME, DEST, tied)
        assert [c[0] for c in cands] == ["'a'", "'z'"] or [
            c[0] for c in cands
        ] == ["a", "z"]


class TestNextHop:
    def test_max_branch_picks_closest_to_dest(self, neighbors):
        assert dstd_next_hop(ME, DEST, neighbors, Branch.MAX) == "best"

    def test_min_branch_picks_least_progress(self, neighbors):
        assert dstd_next_hop(ME, DEST, neighbors, Branch.MIN) == "worst"

    def test_mid_branch_picks_interior(self, neighbors):
        assert dstd_next_hop(ME, DEST, neighbors, Branch.MID) == "mid"

    def test_local_minimum_returns_none(self):
        assert (
            dstd_next_hop(ME, DEST, {"backward": Point(-10, 0)}, Branch.MAX)
            is None
        )

    def test_single_candidate_serves_all_branches(self):
        only = {"only": Point(50, 0)}
        for branch in Branch:
            assert dstd_next_hop(ME, DEST, only, branch) == "only"

    def test_two_candidates_max_min_differ(self):
        two = {"near": Point(10, 0), "far": Point(40, 0)}
        assert dstd_next_hop(ME, DEST, two, Branch.MAX) == "far"
        assert dstd_next_hop(ME, DEST, two, Branch.MIN) == "near"

    def test_mid_rank_spreads_choices(self):
        many = {
            f"n{i}": Point(10.0 * i, 0) for i in range(1, 9)
        }  # progress 10..80
        picks = {
            dstd_next_hop(ME, DEST, many, Branch.MID, mid_rank=r)
            for r in (-2, -1, 0, 1, 2)
        }
        assert len(picks) >= 3  # distinct mid choices for extra copies


class TestBranchAssignment:
    def test_one_copy_max_only(self):
        assert branch_assignment(1) == [(Branch.MAX, 0)]

    def test_two_copies(self):
        assert branch_assignment(2) == [(Branch.MAX, 0), (Branch.MIN, 0)]

    def test_three_copies_paper_default(self):
        branches = branch_assignment(3)
        assert branches[0] == (Branch.MAX, 0)
        assert branches[1] == (Branch.MIN, 0)
        assert branches[2] == (Branch.MID, 0)

    def test_extra_copies_add_distinct_mid_trees(self):
        branches = branch_assignment(6)
        mids = [rank for b, rank in branches if b is Branch.MID]
        assert len(mids) == 4
        assert len(set(mids)) == 4  # all distinct ranks

    def test_zero_copies_rejected(self):
        with pytest.raises(ValueError):
            branch_assignment(0)


def build_line_graph() -> SpatialGraph:
    """S - a - b - T chain plus a detour node."""
    g = SpatialGraph()
    coords = {
        "S": Point(0, 0),
        "a": Point(10, 0),
        "b": Point(20, 0),
        "T": Point(30, 0),
        "up": Point(5, 8),
    }
    for n, p in coords.items():
        g.add_node(n, p)
    g.add_edge("S", "a")
    g.add_edge("a", "b")
    g.add_edge("b", "T")
    g.add_edge("S", "up")
    g.add_edge("up", "a")
    return g


class TestPathExtraction:
    def test_max_path_reaches_destination(self):
        g = build_line_graph()
        path = extract_dstd_path(g, "S", "T", Branch.MAX)
        assert path[0] == "S"
        assert path[-1] == "T"

    def test_min_path_takes_detour(self):
        g = build_line_graph()
        path = extract_dstd_path(g, "S", "T", Branch.MIN)
        # "up" (dist ~26.2) is less progress than "a" (dist 20).
        assert path[1] == "up"
        assert path[-1] == "T"

    def test_unknown_nodes_rejected(self):
        g = build_line_graph()
        with pytest.raises(KeyError):
            extract_dstd_path(g, "S", "missing", Branch.MAX)

    def test_local_minimum_stops_path(self):
        g = SpatialGraph()
        g.add_node("S", Point(0, 0))
        g.add_node("T", Point(100, 0))
        g.add_node("x", Point(-10, 0))
        g.add_edge("S", "x")
        path = extract_dstd_path(g, "S", "T", Branch.MAX)
        assert path == ["S"]

    def test_max_hops_limit(self):
        g = build_line_graph()
        path = extract_dstd_path(g, "S", "T", Branch.MAX, max_hops=1)
        assert len(path) <= 2

    def test_paths_strictly_approach_destination(self):
        g = build_line_graph()
        dest_pos = g.positions["T"]
        for branch in Branch:
            path = extract_dstd_path(g, "S", "T", branch)
            dists = [distance(g.positions[n], dest_pos) for n in path]
            assert all(b < a for a, b in zip(dists, dists[1:]))


class TestTreeExtraction:
    def test_three_copy_tree_has_three_branches(self):
        g = build_line_graph()
        tree = extract_dstd_tree(g, "S", "T", copies=3)
        assert len(tree) == 3

    def test_tree_edge_set_union(self):
        g = build_line_graph()
        tree = extract_dstd_tree(g, "S", "T", copies=2)
        edges = tree_edge_set(list(tree.values()))
        assert ("S", "a") in edges or ("S", "up") in edges
