"""Tests for the k-local Delaunay triangulation graph (k-LDTG).

The load-bearing claims from the paper that we verify:

- the LDTG is a subgraph of the UDG (links are physical);
- for k = 2 it is planar on random instances (the paper's justification
  for building it the way it does);
- it preserves UDG connectivity (a spanner must not disconnect);
- the node-local computation agrees with the global construction.
"""

import pytest

from repro.geometry.primitives import Point
from repro.graphs.connectivity import connected_components
from repro.graphs.faces import is_planar_embedding
from repro.graphs.ldt import (
    local_delaunay_edges_of,
    local_delaunay_graph,
    node_local_ldt_neighbors,
)
from repro.graphs.udg import unit_disk_graph

from tests.conftest import random_points


def positions_of(pts):
    return {i: p for i, p in enumerate(pts)}


def node_sets(components):
    return [frozenset(c) for c in components]


class TestConstruction:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            local_delaunay_graph({0: Point(0, 0)}, radius=10.0, k=0)

    def test_empty_and_singleton(self):
        assert local_delaunay_graph({}, radius=10.0).edge_count() == 0
        g = local_delaunay_graph({0: Point(0, 0)}, radius=10.0)
        assert g.edge_count() == 0

    def test_two_nodes_in_range_connected(self):
        positions = {0: Point(0, 0), 1: Point(5, 0)}
        g = local_delaunay_graph(positions, radius=10.0)
        assert g.neighbors(0) == {1}

    def test_two_nodes_out_of_range_not_connected(self):
        positions = {0: Point(0, 0), 1: Point(50, 0)}
        g = local_delaunay_graph(positions, radius=10.0)
        assert g.edge_count() == 0

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    @pytest.mark.parametrize("radius", [120.0, 200.0])
    def test_subgraph_of_udg(self, seed, radius):
        pts = random_points(35, seed)
        positions = positions_of(pts)
        udg = unit_disk_graph(positions, radius)
        ldt = local_delaunay_graph(positions, radius, k=2, udg=udg)
        for u, v in ldt.edges():
            assert v in udg.neighbors(u)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    @pytest.mark.parametrize("radius", [120.0, 200.0, 350.0])
    def test_planar_for_k2(self, seed, radius):
        pts = random_points(35, seed)
        ldt = local_delaunay_graph(positions_of(pts), radius, k=2)
        assert is_planar_embedding(ldt)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    @pytest.mark.parametrize("radius", [120.0, 250.0])
    def test_preserves_connectivity(self, seed, radius):
        pts = random_points(35, seed)
        positions = positions_of(pts)
        udg = unit_disk_graph(positions, radius)
        ldt = local_delaunay_graph(positions, radius, k=2, udg=udg)
        assert node_sets(connected_components(udg)) == node_sets(
            connected_components(ldt)
        )

    @pytest.mark.parametrize("seed", [7, 8])
    def test_dense_graph_sparsified(self, seed):
        # At a radius where the UDG is dense, the planar LDTG must have
        # at most 3n - 6 edges; the UDG will have far more.
        pts = random_points(35, seed, side=500.0)
        positions = positions_of(pts)
        udg = unit_disk_graph(positions, 300.0)
        ldt = local_delaunay_graph(positions, 300.0, k=2, udg=udg)
        n = len(pts)
        assert ldt.edge_count() <= 3 * n - 6
        assert ldt.edge_count() < udg.edge_count()


class TestLocalEdges:
    def test_local_edges_restricted_to_udg(self):
        # Distant points may be Delaunay neighbours geometrically but
        # cannot form radio links.
        positions = {
            0: Point(0, 0),
            1: Point(90, 0),
            2: Point(180, 0),
            3: Point(90, 80),
        }
        udg = unit_disk_graph(positions, 100.0)
        edges = local_delaunay_edges_of(udg, 0, k=2)
        for edge in edges:
            u, v = tuple(edge)
            assert v in udg.neighbors(u)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_node_local_matches_global(self, seed):
        pts = random_points(30, seed)
        positions = positions_of(pts)
        radius = 180.0
        udg = unit_disk_graph(positions, radius)
        global_ldt = local_delaunay_graph(positions, radius, k=2, udg=udg)
        for node in udg.nodes():
            local = node_local_ldt_neighbors(udg, node, k=2)
            assert local == global_ldt.neighbors(node), (
                f"node {node}: local {sorted(local)} != "
                f"global {sorted(global_ldt.neighbors(node))}"
            )

    def test_isolated_node_has_no_ldt_neighbors(self):
        positions = {0: Point(0, 0), 1: Point(500, 0), 2: Point(505, 0)}
        udg = unit_disk_graph(positions, 50.0)
        assert node_local_ldt_neighbors(udg, 0, k=2) == set()


class TestAgainstRdgIntuition:
    def test_triangle_fully_kept(self):
        positions = {
            0: Point(0, 0),
            1: Point(10, 0),
            2: Point(5, 8),
        }
        ldt = local_delaunay_graph(positions, radius=20.0, k=1)
        assert ldt.edge_count() == 3

    def test_crossing_edge_eliminated_in_dense_cluster(self):
        # Four nodes in convex position, all mutually in range: the
        # Delaunay triangulation keeps one diagonal only.
        positions = {
            0: Point(0, 0),
            1: Point(10, 0),
            2: Point(10, 10),
            3: Point(0, 10),
        }
        ldt = local_delaunay_graph(positions, radius=30.0, k=2)
        edges = ldt.edges()
        diagonals = [e for e in edges if e in {(0, 2), (1, 3)}]
        assert len(diagonals) <= 1
        assert ldt.edge_count() <= 5
