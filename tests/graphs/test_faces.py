"""Tests for planar face traversal (face-routing machinery)."""


from repro.geometry.primitives import Point
from repro.graphs.faces import (
    crossing_edge_pairs,
    enumerate_faces,
    is_planar_embedding,
    next_edge_on_face,
    trace_face,
)
from repro.graphs.udg import SpatialGraph


def square_graph() -> SpatialGraph:
    g = SpatialGraph()
    coords = {
        0: Point(0, 0),
        1: Point(10, 0),
        2: Point(10, 10),
        3: Point(0, 10),
    }
    for n, p in coords.items():
        g.add_node(n, p)
    for u, v in ((0, 1), (1, 2), (2, 3), (3, 0)):
        g.add_edge(u, v)
    return g


def square_with_diagonal() -> SpatialGraph:
    g = square_graph()
    g.add_edge(0, 2)
    return g


class TestNextEdge:
    def test_walks_around_square(self):
        g = square_graph()
        assert next_edge_on_face(g, 0, 1) == 2
        assert next_edge_on_face(g, 1, 2) == 3
        assert next_edge_on_face(g, 2, 3) == 0

    def test_dead_end_doubles_back(self):
        g = SpatialGraph()
        g.add_node(0, Point(0, 0))
        g.add_node(1, Point(10, 0))
        g.add_edge(0, 1)
        assert next_edge_on_face(g, 0, 1) == 0

    def test_isolated_node_returns_none(self):
        g = SpatialGraph()
        g.add_node(0, Point(0, 0))
        g.add_node(1, Point(1, 1))
        assert next_edge_on_face(g, 1, 0) is None

    def test_diagonal_splits_faces(self):
        g = square_with_diagonal()
        # Convention: clockwise=True keeps the traversed face on the
        # RIGHT of each directed edge.  For 1 -> 2 that is the outer
        # face (continue to 3); the opposite orientation turns onto the
        # diagonal, staying on triangle 0-1-2.
        assert next_edge_on_face(g, 1, 2, clockwise=True) == 3
        assert next_edge_on_face(g, 1, 2, clockwise=False) == 0


class TestTraceFace:
    def test_square_face_cycle(self):
        g = square_graph()
        walk = trace_face(g, 0, 1)
        assert walk[:4] == [0, 1, 2, 3]

    def test_triangle_face_in_split_square(self):
        g = square_with_diagonal()
        # Face on the right of 1 -> 0 is triangle 0-1-2.
        walk = trace_face(g, 1, 0)
        assert set(walk) == {0, 1, 2}

    def test_max_steps_bounds_walk(self):
        g = square_graph()
        walk = trace_face(g, 0, 1, max_steps=2)
        assert len(walk) <= 4


class TestEnumerateFaces:
    def test_square_has_two_faces(self):
        faces = enumerate_faces(square_graph())
        assert len(faces) == 2  # interior + outer

    def test_split_square_has_three_faces(self):
        faces = enumerate_faces(square_with_diagonal())
        assert len(faces) == 3  # two triangles + outer

    def test_euler_formula(self):
        # v - e + f = 2 for a connected planar graph (counting the
        # outer face).
        for g in (square_graph(), square_with_diagonal()):
            v = len(g.nodes())
            e = g.edge_count()
            f = len(enumerate_faces(g))
            assert v - e + f == 2


class TestPlanarity:
    def test_square_planar(self):
        assert is_planar_embedding(square_graph())

    def test_crossing_diagonals_not_planar(self):
        g = square_graph()
        g.add_edge(0, 2)
        g.add_edge(1, 3)
        assert not is_planar_embedding(g)
        crossings = list(crossing_edge_pairs(g))
        assert len(crossings) == 1

    def test_shared_endpoints_allowed(self):
        g = square_with_diagonal()
        assert is_planar_embedding(g)
        assert list(crossing_edge_pairs(g)) == []
