"""Tests for the unit-disk graph and spatial index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.primitives import Point, distance
from repro.graphs.udg import GridIndex, SpatialGraph, unit_disk_graph

from tests.conftest import random_points


def positions_of(pts):
    return {i: p for i, p in enumerate(pts)}


class TestSpatialGraph:
    def test_add_node_and_edge(self):
        g = SpatialGraph()
        g.add_node("a", Point(0, 0))
        g.add_node("b", Point(1, 0))
        g.add_edge("a", "b")
        assert g.neighbors("a") == {"b"}
        assert g.neighbors("b") == {"a"}

    def test_self_loop_rejected(self):
        g = SpatialGraph()
        g.add_node("a", Point(0, 0))
        with pytest.raises(ValueError):
            g.add_edge("a", "a")

    def test_edge_requires_registered_nodes(self):
        g = SpatialGraph()
        g.add_node("a", Point(0, 0))
        with pytest.raises(KeyError):
            g.add_edge("a", "missing")

    def test_remove_edge(self):
        g = SpatialGraph()
        g.add_node(1, Point(0, 0))
        g.add_node(2, Point(1, 0))
        g.add_edge(1, 2)
        g.remove_edge(1, 2)
        assert g.neighbors(1) == set()

    def test_edge_count(self):
        g = SpatialGraph()
        for i in range(3):
            g.add_node(i, Point(float(i), 0))
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert g.edge_count() == 2

    def test_degree(self):
        g = SpatialGraph()
        for i in range(3):
            g.add_node(i, Point(float(i), 0))
        g.add_edge(0, 1)
        g.add_edge(0, 2)
        assert g.degree(0) == 2
        assert g.degree(2) == 1

    def test_k_hop_neighborhood(self):
        g = SpatialGraph()
        for i in range(5):
            g.add_node(i, Point(float(i), 0))
        for i in range(4):
            g.add_edge(i, i + 1)
        assert g.k_hop_neighborhood(0, 1) == {1}
        assert g.k_hop_neighborhood(0, 2) == {1, 2}
        assert g.k_hop_neighborhood(2, 2) == {0, 1, 3, 4}
        assert g.k_hop_neighborhood(0, 0) == set()

    def test_k_hop_negative_raises(self):
        g = SpatialGraph()
        g.add_node(0, Point(0, 0))
        with pytest.raises(ValueError):
            g.k_hop_neighborhood(0, -1)

    def test_subgraph(self):
        g = SpatialGraph()
        for i in range(4):
            g.add_node(i, Point(float(i), 0))
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        sub = g.subgraph({0, 1, 2})
        assert set(sub.positions) == {0, 1, 2}
        assert sub.neighbors(2) == {1}


class TestGridIndex:
    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(0.0)

    def test_finds_neighbors_across_cells(self):
        index = GridIndex(cell_size=10.0)
        index.insert("a", Point(9.9, 0))
        index.insert("b", Point(10.1, 0))
        found = {n for n, _ in index.neighbors_within(Point(9.9, 0), 1.0)}
        assert found == {"a", "b"}

    def test_excludes_far_points(self):
        index = GridIndex(cell_size=10.0)
        index.insert("a", Point(0, 0))
        index.insert("b", Point(50, 50))
        found = {n for n, _ in index.neighbors_within(Point(0, 0), 5.0)}
        assert found == {"a"}

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_matches_brute_force(self, seed):
        pts = random_points(30, seed, side=100.0)
        index = GridIndex(cell_size=20.0)
        for i, p in enumerate(pts):
            index.insert(i, p)
        query = pts[0]
        radius = 25.0
        found = {n for n, _ in index.neighbors_within(query, radius)}
        brute = {
            i for i, p in enumerate(pts) if distance(p, query) <= radius
        }
        assert found == brute


class TestIterPairsWithin:
    """The deduped pair iteration behind the beacon-tick UDG rebuild."""

    def test_rejects_bad_radius(self):
        index = GridIndex(cell_size=10.0)
        with pytest.raises(ValueError):
            list(index.iter_pairs_within(0.0))

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    @pytest.mark.parametrize("cell_size,radius", [
        (25.0, 25.0),   # radius == cell size (the unit_disk_graph case)
        (10.0, 25.0),   # radius spans several cells (reach > 1)
        (40.0, 25.0),   # radius smaller than a cell
    ])
    def test_each_close_pair_yielded_exactly_once(
        self, seed, cell_size, radius
    ):
        pts = random_points(40, seed, side=100.0)
        index = GridIndex(cell_size=cell_size)
        for i, p in enumerate(pts):
            index.insert(i, p)
        yielded = list(index.iter_pairs_within(radius))
        canonical = [tuple(sorted(pair)) for pair in yielded]
        assert len(canonical) == len(set(canonical)), "pair yielded twice"
        brute = {
            (i, j)
            for i in range(len(pts))
            for j in range(i + 1, len(pts))
            if distance(pts[i], pts[j]) <= radius
        }
        assert set(canonical) == brute

    def test_no_self_pairs_for_coincident_points(self):
        index = GridIndex(cell_size=10.0)
        index.insert("a", Point(5, 5))
        index.insert("b", Point(5, 5))
        pairs = list(index.iter_pairs_within(1.0))
        assert pairs == [("a", "b")]


class TestUnitDiskGraph:
    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            unit_disk_graph({}, 0.0)

    def test_simple_chain(self):
        positions = {0: Point(0, 0), 1: Point(5, 0), 2: Point(10, 0)}
        g = unit_disk_graph(positions, 6.0)
        assert g.neighbors(0) == {1}
        assert g.neighbors(1) == {0, 2}

    def test_distance_exactly_radius_connects(self):
        positions = {0: Point(0, 0), 1: Point(10, 0)}
        g = unit_disk_graph(positions, 10.0)
        assert g.neighbors(0) == {1}

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("radius", [50.0, 150.0, 300.0])
    def test_matches_brute_force(self, seed, radius):
        pts = random_points(40, seed)
        positions = positions_of(pts)
        g = unit_disk_graph(positions, radius)
        for i in positions:
            expected = {
                j
                for j in positions
                if j != i and distance(positions[i], positions[j]) <= radius
            }
            assert g.neighbors(i) == expected

    def test_adjacency_symmetry(self):
        pts = random_points(50, 9)
        g = unit_disk_graph(positions_of(pts), 120.0)
        for u in g.nodes():
            for v in g.neighbors(u):
                assert u in g.neighbors(v)
