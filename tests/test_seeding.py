"""Tests for deterministic RNG derivation."""

import pytest

from repro.seeding import (
    REPLICATE_SEED_STRIDE,
    derive_rng,
    derive_seed,
    replicate_seed,
    shard_partition,
    shard_sizes,
    stable_shard,
)


class TestDeriveSeed:
    def test_stable_for_same_parts(self):
        assert derive_seed(1, "a", 2.5) == derive_seed(1, "a", 2.5)

    def test_differs_by_any_part(self):
        base = derive_seed(1, "node", "mac")
        assert derive_seed(2, "node", "mac") != base
        assert derive_seed(1, "other", "mac") != base
        assert derive_seed(1, "node", "rwp") != base

    def test_type_sensitive(self):
        # repr-based flattening distinguishes 1 from "1".
        assert derive_seed(1) != derive_seed("1")

    def test_no_part_concatenation_collision(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed("ab", "c") != derive_seed("a", "bc")


class TestDeriveRng:
    def test_same_key_same_stream(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "x")
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_different_key_different_stream(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "y")
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]

    def test_streams_are_independent_instances(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "x")
        a.random()
        # Consuming from a must not advance b.
        assert b.random() == derive_rng(7, "x").random()


class TestReplicateSeed:
    def test_first_replicate_is_master_seed(self):
        assert replicate_seed(42, 0) == 42

    def test_strided_and_disjoint(self):
        seeds = [replicate_seed(1, i) for i in range(10)]
        assert seeds == [1 + REPLICATE_SEED_STRIDE * i for i in range(10)]
        assert len(set(seeds)) == 10

    def test_rejects_negative_replicate(self):
        with pytest.raises(ValueError):
            replicate_seed(1, -1)


class TestStableShard:
    def test_in_range_and_deterministic(self):
        keys = [f"key-{i}" for i in range(200)]
        for count in (1, 2, 3, 7):
            shards = [stable_shard(k, count) for k in keys]
            assert all(0 <= s < count for s in shards)
            assert shards == [stable_shard(k, count) for k in keys]

    def test_single_shard_takes_everything(self):
        assert all(
            stable_shard(f"k{i}", 1) == 0 for i in range(50)
        )

    def test_keys_spread_across_shards(self):
        # Statistical, but 200 distinct keys into 2 shards all landing
        # on one side would mean the hash is broken.
        shards = {stable_shard(f"key-{i}", 2) for i in range(200)}
        assert shards == {0, 1}

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            stable_shard("k", 0)


class TestShardPartition:
    def test_is_a_partition_matching_stable_shard(self):
        keys = [f"key-{i}" for i in range(200)]
        parts = shard_partition(keys, 3)
        assert len(parts) == 3
        # Every key lands in exactly one part, chosen by stable_shard.
        assert sorted(key for part in parts for key in part) == sorted(keys)
        for index, part in enumerate(parts):
            assert all(stable_shard(key, 3) == index for key in part)

    def test_preserves_input_order_within_parts(self):
        keys = [f"key-{i}" for i in range(50)]
        parts = shard_partition(keys, 2)
        order = {key: i for i, key in enumerate(keys)}
        for part in parts:
            assert part == sorted(part, key=order.__getitem__)

    def test_sizes_agree_with_shard_sizes(self):
        keys = [f"key-{i}" for i in range(120)]
        assert [len(p) for p in shard_partition(keys, 5)] == shard_sizes(
            keys, 5
        )

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            shard_partition(["k"], 0)


class TestShardSizes:
    def test_counts_match_the_partition(self):
        from collections import Counter

        keys = [f"key-{i}" for i in range(200)]
        sizes = shard_sizes(keys, 3)
        expected = Counter(stable_shard(k, 3) for k in keys)
        assert sizes == [expected[i] for i in range(3)]
        assert sum(sizes) == len(keys)

    def test_empty_shards_are_zero_not_missing(self):
        # One key into many shards: exactly one slot is 1, rest 0.
        sizes = shard_sizes(["only-key"], 8)
        assert len(sizes) == 8
        assert sorted(sizes) == [0] * 7 + [1]

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            shard_sizes(["k"], 0)
