"""Tests for deterministic RNG derivation."""

import pytest

from repro.seeding import (
    REPLICATE_SEED_STRIDE,
    derive_rng,
    derive_seed,
    replicate_seed,
)


class TestDeriveSeed:
    def test_stable_for_same_parts(self):
        assert derive_seed(1, "a", 2.5) == derive_seed(1, "a", 2.5)

    def test_differs_by_any_part(self):
        base = derive_seed(1, "node", "mac")
        assert derive_seed(2, "node", "mac") != base
        assert derive_seed(1, "other", "mac") != base
        assert derive_seed(1, "node", "rwp") != base

    def test_type_sensitive(self):
        # repr-based flattening distinguishes 1 from "1".
        assert derive_seed(1) != derive_seed("1")

    def test_no_part_concatenation_collision(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert derive_seed("ab", "c") != derive_seed("a", "bc")


class TestDeriveRng:
    def test_same_key_same_stream(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "x")
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_different_key_different_stream(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "y")
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]

    def test_streams_are_independent_instances(self):
        a = derive_rng(7, "x")
        b = derive_rng(7, "x")
        a.random()
        # Consuming from a must not advance b.
        assert b.random() == derive_rng(7, "x").random()


class TestReplicateSeed:
    def test_first_replicate_is_master_seed(self):
        assert replicate_seed(42, 0) == 42

    def test_strided_and_disjoint(self):
        seeds = [replicate_seed(1, i) for i in range(10)]
        assert seeds == [1 + REPLICATE_SEED_STRIDE * i for i in range(10)]
        assert len(set(seeds)) == 10

    def test_rejects_negative_replicate(self):
        with pytest.raises(ValueError):
            replicate_seed(1, -1)
