"""Docs stay true: generated references in sync, internal links valid."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro import docgen

REPO = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target).  Images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


class TestGeneratedDocs:
    def test_committed_docs_match_the_code(self):
        """docs/protocols.md and docs/cli.md are generator output.

        A mismatch means a protocol, flag, or default changed without
        regenerating: run ``PYTHONPATH=src python -m repro.docgen``.
        """
        stale = docgen.stale_docs(REPO)
        assert stale == [], (
            f"stale generated docs {stale}: run "
            "`PYTHONPATH=src python -m repro.docgen`"
        )

    def test_every_generated_doc_carries_the_marker(self):
        for content in docgen.generated_docs().values():
            assert content.startswith(docgen.GENERATED_MARK)

    def test_generator_covers_every_registered_protocol(self):
        from repro.baselines.registry import available_protocols

        table = docgen.protocols_markdown()
        for name in available_protocols():
            assert f"| `{name}` |" in table

    def test_generator_covers_the_report_command(self):
        reference = docgen.cli_markdown()
        for command in (
            "repro run",
            "repro campaign orchestrate",
            "repro report",
        ):
            assert f"`{command}`" in reference

    def test_check_mode_flags_a_stale_file(self, tmp_path, capsys):
        assert docgen.main(["--root", str(tmp_path)]) == 0
        assert docgen.main(["--root", str(tmp_path), "--check"]) == 0
        (tmp_path / "docs" / "cli.md").write_text("drifted\n")
        assert docgen.main(["--root", str(tmp_path), "--check"]) == 1
        assert "cli.md" in capsys.readouterr().err


def _internal_links(path: Path) -> list[tuple[str, Path]]:
    links = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        plain = target.split("#")[0]
        if not plain:
            continue  # same-file anchor
        links.append((target, (path.parent / plain).resolve()))
    return links


@pytest.mark.parametrize(
    "doc",
    sorted(
        str(p.relative_to(REPO))
        for p in [REPO / "README.md", *(REPO / "docs").glob("*.md")]
    ),
)
def test_internal_links_resolve(doc):
    path = REPO / doc
    broken = [
        target
        for target, resolved in _internal_links(path)
        if not resolved.exists()
    ]
    assert broken == [], f"{doc}: broken internal links {broken}"
