"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.geometry.primitives import Point
from repro.mobility.base import Region


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests that need randomness."""
    return random.Random(12345)


@pytest.fixture
def small_region() -> Region:
    """A 300 m square test region."""
    return Region(300.0, 300.0)


@pytest.fixture
def paper_region() -> Region:
    """The paper's 1500 m x 300 m topology."""
    return Region(1500.0, 300.0)


def random_points(n: int, seed: int, side: float = 1000.0) -> list[Point]:
    """n uniform points in a square of the given side."""
    rng = random.Random(seed)
    return [
        Point(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)
    ]
