"""Shared fixtures for the trade-off analysis layer.

One tiny streamed campaign (2 adversary cells x 2 protocols x 2
replicates = 8 simulations) backs the store, report, and CLI tests;
it runs once per session.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.scenarios import Scenario

#: Small enough that the full streamed grid finishes in seconds.
TINY = Scenario(
    name="tiny",
    n_nodes=12,
    active_nodes=6,
    radius=150.0,
    message_count=4,
    sim_time=25.0,
    seed=3,
)


def tiny_spec() -> CampaignSpec:
    return CampaignSpec(
        name="store-tiny",
        base=TINY,
        grid=(("adversary", (None, "blackhole:0.5")),),
        protocols=("glr", "epidemic"),
        replicates=2,
    )


@pytest.fixture(scope="session")
def tiny_stream(tmp_path_factory) -> Path:
    """A finished tiny campaign's metrics stream."""
    stream = tmp_path_factory.mktemp("store") / "campaign.jsonl"
    run_campaign(tiny_spec(), stream_path=stream)
    return stream


@pytest.fixture(scope="session")
def tiny_shard_dir(tmp_path_factory) -> Path:
    """The same campaign as shard streams in a run-dir layout.

    No merged ``campaign.jsonl``: ingesting the directory must fall
    back to the shard streams and union them.
    """
    run_dir = tmp_path_factory.mktemp("store-shards")
    for index in range(2):
        run_campaign(
            tiny_spec(),
            stream_path=run_dir / f"shard{index}.jsonl",
            shard_index=index,
            shard_count=2,
        )
    return run_dir
