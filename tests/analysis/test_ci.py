"""Tests for confidence intervals and aggregation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.aggregate import (
    cell_coverage,
    summarize_cells,
    summarize_metrics,
)
from repro.analysis.ci import (
    ConfidenceInterval,
    mean_confidence_interval,
    t_critical_90,
)
from repro.sim.stats import SimulationMetrics


class TestTCritical:
    def test_known_values(self):
        assert t_critical_90(1) == pytest.approx(6.314)
        assert t_critical_90(9) == pytest.approx(1.833)  # paper: 10 runs
        assert t_critical_90(30) == pytest.approx(1.697)

    def test_interpolates_down_to_nearest_table_entry(self):
        assert t_critical_90(27) == t_critical_90(25)

    def test_large_df_approaches_normal(self):
        assert t_critical_90(10_000) == pytest.approx(1.658, abs=0.02)

    def test_invalid_df(self):
        with pytest.raises(ValueError):
            t_critical_90(0)


class TestMeanCI:
    def test_single_sample_zero_width(self):
        ci = mean_confidence_interval([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0

    def test_identical_samples_zero_width(self):
        ci = mean_confidence_interval([3.0] * 10)
        assert ci.half_width == 0.0

    def test_known_interval(self):
        # Samples 1..10: mean 5.5, sd ~3.028, sem ~0.9574, t(9)=1.833.
        ci = mean_confidence_interval([float(i) for i in range(1, 11)])
        assert ci.mean == pytest.approx(5.5)
        assert ci.half_width == pytest.approx(1.833 * 3.0277 / math.sqrt(10), rel=1e-3)

    def test_bounds(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0, n=5)
        assert ci.low == 8.0
        assert ci.high == 12.0

    def test_str_formatting(self):
        assert str(ConfidenceInterval(10.0, 2.5, 5)) == "10.00±2.50"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_only_90_percent_supported(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=0.95)

    @given(
        st.lists(
            st.floats(min_value=-1e5, max_value=1e5),
            min_size=2,
            max_size=30,
        )
    )
    def test_mean_inside_interval(self, samples):
        ci = mean_confidence_interval(samples)
        assert ci.low <= ci.mean <= ci.high

    @given(st.floats(min_value=-100, max_value=100), st.integers(2, 20))
    def test_shifted_samples_shift_mean(self, shift, n):
        base = [float(i) for i in range(n)]
        ci1 = mean_confidence_interval(base)
        ci2 = mean_confidence_interval([x + shift for x in base])
        assert ci2.mean == pytest.approx(ci1.mean + shift, abs=1e-6)
        assert ci2.half_width == pytest.approx(ci1.half_width, abs=1e-6)


def make_metrics(protocol="glr", ratio=1.0, latency=10.0, hops=5.0):
    return SimulationMetrics(
        protocol=protocol,
        duration=100.0,
        messages_created=10,
        messages_delivered=int(10 * ratio),
        delivery_ratio=ratio,
        average_latency=latency,
        average_hops=hops,
        max_peak_storage=7,
        average_peak_storage=3.5,
        time_average_storage=2.0,
        frames_sent=100,
        frames_delivered=90,
        frames_lost_collision=5,
        frames_lost_range=5,
        frames_dropped_queue=0,
        retries=3,
        data_bytes_sent=1000,
        control_bytes_sent=100,
        events_processed=1000,
    )


class TestSummarize:
    def test_summary_fields(self):
        runs = [make_metrics(latency=10.0), make_metrics(latency=20.0)]
        summary = summarize_metrics(runs)
        assert summary.protocol == "glr"
        assert summary.runs == 2
        assert summary.average_latency.mean == pytest.approx(15.0)
        assert summary.delivery_ratio.mean == pytest.approx(1.0)

    def test_mixed_protocols_rejected(self):
        with pytest.raises(ValueError):
            summarize_metrics(
                [make_metrics("glr"), make_metrics("epidemic")]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_metrics([])

    def test_all_undelivered_runs_have_no_latency(self):
        runs = [make_metrics(ratio=0.0, latency=None, hops=None)]
        summary = summarize_metrics(runs)
        assert summary.average_latency is None
        assert summary.average_hops is None


class TestSummarizeCells:
    def test_preserves_cell_order(self):
        cells = {
            ("b", "glr"): [make_metrics()],
            ("a", "glr"): [make_metrics()],
        }
        assert list(summarize_cells(cells)) == [("b", "glr"), ("a", "glr")]

    def test_empty_cell_raises(self):
        # Partial views (shard/watch rebuilds) drop empty cells before
        # summarising; an empty list reaching here is a caller bug.
        with pytest.raises(ValueError):
            summarize_cells({("a", "glr"): []})


class TestCellCoverage:
    def test_counts_complete_and_started_cells(self):
        cells = {
            ("a", "glr"): [make_metrics(), make_metrics()],
            ("b", "glr"): [make_metrics()],
        }
        assert cell_coverage(cells, expected_runs=2) == (1, 2)
        assert cell_coverage(cells, expected_runs=1) == (2, 2)
        assert cell_coverage({}, expected_runs=2) == (0, 0)
