"""Tests for the ASCII topology renderer."""

from repro.analysis.topology_art import render_topology
from repro.geometry.primitives import Point
from repro.graphs.udg import SpatialGraph, unit_disk_graph
from repro.mobility.base import Region
from repro.mobility.static import uniform_random_positions


class TestRenderTopology:
    def test_empty_graph(self):
        assert "empty" in render_topology(SpatialGraph())

    def test_single_node(self):
        g = SpatialGraph()
        g.add_node(0, Point(5, 5))
        art = render_topology(g, width=10, height=5)
        assert "@" in art  # single node is its own largest component

    def test_connected_pair_drawn_with_edge(self):
        positions = {0: Point(0, 0), 1: Point(100, 100)}
        g = unit_disk_graph(positions, 200.0)
        art = render_topology(g, width=20, height=10)
        assert art.count("@") == 2
        assert "." in art  # edge dots

    def test_disconnected_node_marked_differently(self):
        positions = {
            0: Point(0, 0),
            1: Point(10, 0),
            2: Point(1000, 1000),
        }
        g = unit_disk_graph(positions, 50.0)
        art = render_topology(g, width=30, height=10)
        assert "@" in art and "o" in art

    def test_title_and_summary_line(self):
        positions = uniform_random_positions(
            list(range(20)), Region(500, 500), seed=1
        )
        g = unit_disk_graph(positions, 150.0)
        art = render_topology(g, title="Figure 1 (a)")
        assert art.startswith("Figure 1 (a)")
        assert "components:" in art
        assert "edges:" in art

    def test_grid_dimensions(self):
        positions = uniform_random_positions(
            list(range(10)), Region(500, 500), seed=2
        )
        g = unit_disk_graph(positions, 100.0)
        art = render_topology(g, width=40, height=12)
        lines = art.splitlines()
        border_lines = [ln for ln in lines if ln.startswith("+")]
        assert len(border_lines) == 2
        assert all(len(ln) == 42 for ln in lines if ln.startswith("|"))
