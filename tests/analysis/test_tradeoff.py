"""Tests for the multi-objective trade-off math (hand-built points)."""

from __future__ import annotations

import pytest

from repro.analysis.tradeoff import (
    TradeoffPoint,
    bootstrap_mean_interval,
    dominance_counts,
    dominates,
    pareto_frontier,
    rank_protocols,
    regret_table,
    scenario_rankings,
)


def point(protocol, delivery, latency, storage, runs=3):
    return TradeoffPoint(
        protocol=protocol,
        delivery_ratio=delivery,
        latency=latency,
        storage=storage,
        runs=runs,
    )


class TestDominance:
    def test_strictly_better_everywhere_dominates(self):
        a = point("a", 0.9, 10.0, 5.0)
        b = point("b", 0.8, 20.0, 9.0)
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_tradeoffs_do_not_dominate(self):
        fast = point("fast", 0.8, 5.0, 20.0)
        lean = point("lean", 0.8, 30.0, 2.0)
        assert not dominates(fast, lean)
        assert not dominates(lean, fast)

    def test_exact_ties_do_not_dominate(self):
        a = point("a", 0.9, 10.0, 5.0)
        b = point("b", 0.9, 10.0, 5.0)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_none_latency_is_infinitely_bad(self):
        delivered = point("ok", 0.5, 100.0, 5.0)
        undelivered = point("mute", 0.5, None, 5.0)
        assert dominates(delivered, undelivered)
        assert not dominates(undelivered, delivered)


class TestFrontier:
    def test_dominated_points_drop(self):
        best = point("best", 0.9, 10.0, 5.0)
        worse = point("worse", 0.8, 20.0, 9.0)
        other = point("other", 0.95, 40.0, 3.0)
        assert pareto_frontier([best, worse, other]) == [best, other]

    def test_single_point_is_its_own_frontier(self):
        only = point("only", 0.1, None, 50.0)
        assert pareto_frontier([only]) == [only]

    def test_ties_survive_together(self):
        a = point("a", 0.9, 10.0, 5.0)
        b = point("b", 0.9, 10.0, 5.0)
        assert pareto_frontier([a, b]) == [a, b]

    def test_input_order_is_preserved(self):
        fast = point("fast", 0.8, 5.0, 20.0)
        lean = point("lean", 0.8, 30.0, 2.0)
        assert pareto_frontier([lean, fast]) == [lean, fast]


class TestBootstrap:
    def test_deterministic_for_a_seed(self):
        samples = [0.5, 0.7, 0.9, 0.6]
        assert bootstrap_mean_interval(samples, seed=7) == (
            bootstrap_mean_interval(samples, seed=7)
        )
        assert bootstrap_mean_interval(samples, seed=7) != (
            bootstrap_mean_interval(samples, seed=8)
        )

    def test_interval_brackets_the_sample_range(self):
        samples = [0.5, 0.7, 0.9, 0.6]
        low, high = bootstrap_mean_interval(samples)
        assert min(samples) <= low <= high <= max(samples)

    def test_single_sample_is_zero_width(self):
        assert bootstrap_mean_interval([0.42]) == (0.42, 0.42)

    def test_empty_and_degenerate_inputs_raise(self):
        with pytest.raises(ValueError, match="empty"):
            bootstrap_mean_interval([])
        with pytest.raises(ValueError, match="resample"):
            bootstrap_mean_interval([1.0, 2.0], resamples=0)


class TestRankings:
    def test_best_first_and_direction(self):
        samples = {"a": [0.9, 0.9], "b": [0.5, 0.5]}
        best_high = rank_protocols(samples, higher_is_better=True)
        assert [r.protocol for r in best_high] == ["a", "b"]
        best_low = rank_protocols(samples, higher_is_better=False)
        assert [r.protocol for r in best_low] == ["b", "a"]
        assert [r.rank for r in best_high] == [1, 2]

    def test_ties_share_a_competition_rank(self):
        ranks = rank_protocols(
            {"a": [0.9], "b": [0.9], "c": [0.1]}
        )
        assert [(r.rank, r.protocol) for r in ranks] == [
            (1, "a"), (1, "b"), (3, "c"),
        ]

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError, match="no protocols"):
            rank_protocols({})
        with pytest.raises(ValueError, match="no samples"):
            rank_protocols({"a": []})

    def test_scenario_rankings_drop_none_samples(self):
        values = {
            ("s1", "a"): [10.0, None, 20.0],
            ("s1", "mute"): [None, None],
            ("s2", "a"): [5.0],
        }
        rankings = scenario_rankings(values, higher_is_better=False)
        assert set(rankings) == {"s1", "s2"}
        assert [r.protocol for r in rankings["s1"]] == ["a"]
        assert rankings["s1"][0].n == 2  # the None replicate dropped


class TestSummaries:
    def test_dominance_counts(self):
        frontiers = {
            "s1": [(point("a", 0.9, 1.0, 1.0), True),
                   (point("b", 0.1, 9.0, 9.0), False)],
            "s2": [(point("a", 0.9, 1.0, 1.0), True),
                   (point("b", 0.1, 9.0, 9.0), True)],
        }
        assert dominance_counts(frontiers) == {
            "a": (2, 2),
            "b": (1, 2),
        }

    def test_regret_is_worst_case_gap_to_the_best(self, tiny_stream):
        from repro.analysis.store import ResultStore

        store = ResultStore.open(tiny_stream)
        table = regret_table(store.select().summaries())
        summaries = store.select().summaries()
        assert set(table) == {"glr", "epidemic"}
        # The best protocol in every scenario has zero regret there, so
        # per metric at least one protocol's worst case can still be 0
        # only if it is best everywhere; all regrets are non-negative.
        for rows in table.values():
            for gap in rows.values():
                assert gap is None or gap >= 0.0
        # Cross-check one entry by hand: delivery regret of glr is the
        # max gap to the per-scenario best delivery mean.
        by_scenario = {}
        for (scenario, protocol), summary in summaries.items():
            by_scenario.setdefault(scenario, {})[protocol] = (
                summary.delivery_ratio.mean
            )
        expected = max(
            max(cells.values()) - cells["glr"]
            for cells in by_scenario.values()
        )
        assert table["glr"]["delivery_ratio"] == pytest.approx(expected)
