"""Tests for the queryable result store."""

from __future__ import annotations

import pytest

from repro.analysis.store import (
    DEFAULT_MOBILITY,
    QUERYABLE_METRICS,
    ResultStore,
    axis_table,
)
from repro.experiments.campaign import (
    CampaignSpec,
    campaign_result_from_stream,
    run_campaign,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.stream import StreamError

#: Matches the conftest fixture's base scenario: small and fast.
TINY = Scenario(
    name="tiny",
    n_nodes=12,
    active_nodes=6,
    radius=150.0,
    message_count=4,
    sim_time=25.0,
    seed=3,
)


class TestIngest:
    def test_reingest_is_idempotent(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        first = store.records()
        assert len(first) == 8
        assert store.ingest(tiny_stream) == 0
        assert store.records() == first

    def test_shard_dir_unions_to_the_same_records(
        self, tiny_stream, tiny_shard_dir
    ):
        merged = ResultStore.open(tiny_stream)
        sharded = ResultStore.open(tiny_shard_dir)

        def identity(records):
            # wall_time_s differs between executions; everything the
            # analysis layer reads must not.
            return [
                {
                    k: r[k]
                    for k in (
                        "key", "scenario", "protocol", "replicate",
                        "seed", "metrics",
                    )
                }
                for r in records
            ]

        assert identity(sharded.records()) == identity(merged.records())
        assert sharded.spec_hash == merged.spec_hash

    def test_shards_then_merged_adds_nothing(
        self, tiny_stream, tiny_shard_dir
    ):
        store = ResultStore.open(tiny_shard_dir)
        assert store.ingest(tiny_stream) == 0

    def test_mixing_campaigns_is_refused(self, tiny_stream, tmp_path):
        other = tmp_path / "other.jsonl"
        run_campaign(
            CampaignSpec(
                name="other-campaign",
                base=TINY,
                protocols=("glr",),
                replicates=1,
            ),
            stream_path=other,
        )
        store = ResultStore.open(tiny_stream)
        with pytest.raises(StreamError, match="spec"):
            store.ingest(other)

    def test_streamless_directory_is_refused(self, tmp_path):
        with pytest.raises(StreamError):
            ResultStore.open(tmp_path)

    def test_missing_path_is_refused(self, tmp_path):
        with pytest.raises(StreamError):
            ResultStore.open(tmp_path / "nope.jsonl")

    def test_empty_store_has_no_spec(self):
        store = ResultStore()
        assert store.spec_hash is None
        with pytest.raises(StreamError, match="empty store"):
            store.spec


class TestBitIdentity:
    def test_full_result_matches_campaign_aggregate(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        reference = campaign_result_from_stream(tiny_stream)
        assert store.result().render() == reference.render()
        assert store.result().metrics == reference.metrics

    def test_filtered_result_is_the_exact_subset(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        reference = campaign_result_from_stream(tiny_stream)
        query = store.select(protocol="glr")
        filtered = query.result().metrics
        expected = {
            cell: runs
            for cell, runs in reference.metrics.items()
            if cell[1] == "glr"
        }
        assert filtered == expected

    def test_summaries_match_the_full_aggregate(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        reference = campaign_result_from_stream(tiny_stream)
        assert store.select().summaries() == reference.summaries()


class TestSelect:
    def test_adversary_filters(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        honest = store.select(adversary="none")
        attacked = store.select(adversary="blackhole")
        exact = store.select(adversary="blackhole:0.5")
        assert {c.adversary for c in honest.cells} == {None}
        assert attacked.cells == exact.cells
        assert {c.adversary for c in exact.cells} == {"blackhole:0.5"}
        assert len(honest.cells) + len(attacked.cells) == len(store.cells())

    def test_protocol_name_and_alias(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        assert len(store.select(protocol="glr").cells) == 2
        # Registry aliases resolve before matching.
        assert store.select(protocol="EPIDEMIC").cells == store.select(
            protocol="epidemic"
        ).cells

    def test_scenario_substring(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        slice_ = store.select(scenario="adversary=none")
        assert {c.scenario_name for c in slice_.cells} == {
            "store-tiny/adversary=none"
        }

    def test_mobility_default_label(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        assert len(store.select(mobility=DEFAULT_MOBILITY).cells) == len(
            store.cells()
        )
        assert store.select(mobility="static").cells == ()

    def test_unknown_filters_fail_loudly(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        with pytest.raises(ValueError, match="unknown protocol"):
            store.select(protocol="warp_drive")
        with pytest.raises(ValueError, match="unknown"):
            store.select(mobility="teleport")
        with pytest.raises(ValueError, match="unknown metric"):
            store.select(metric="vibes")

    def test_values_shape(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        values = store.select(metric="delivery_ratio").values()
        assert set(values) == {cell.key for cell in store.cells()}
        assert all(len(runs) == 2 for runs in values.values())
        with pytest.raises(ValueError, match="no metric"):
            store.select().values()

    def test_queryable_metrics_exist_on_results(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        for metric in QUERYABLE_METRICS:
            store.select().values(metric)


class TestAxisTable:
    def test_marginal_means_per_axis_value(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        query = store.select()
        values, series = axis_table(
            query.cells, query.metrics_by_cell(),
            "adversary", "delivery_ratio",
        )
        assert [str(v) for v in values] == ["none", "blackhole:0.5"]
        assert set(series) == {"glr", "epidemic"}
        for means in series.values():
            assert len(means) == 2
            assert all(m is None or 0.0 <= m <= 1.0 for m in means)

    def test_unknown_axis_yields_empty_table(self, tiny_stream):
        store = ResultStore.open(tiny_stream)
        query = store.select()
        values, series = axis_table(
            query.cells, query.metrics_by_cell(), "radius", "delivery_ratio"
        )
        assert values == []
        assert all(means == [] for means in series.values())
