"""Tests for trade-off report rendering and the ``repro report`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis.report import generate_report
from repro.analysis.store import ResultStore
from repro.cli import main


@pytest.fixture(scope="module")
def tiny_store(tiny_stream) -> ResultStore:
    return ResultStore.open(tiny_stream)


class TestMarkdown:
    def test_report_has_frontiers_rankings_and_summaries(self, tiny_store):
        document = generate_report(tiny_store, resamples=50)
        assert "# Trade-off report — campaign store-tiny" in document
        assert "Pareto frontier" in document
        # At least one protocol is on a frontier somewhere.
        assert "| yes |" in document
        assert "Rank matrix — delivery_ratio" in document
        assert "Dominance and worst-case regret" in document
        assert "Trade-off curves" in document
        for protocol in ("glr", "epidemic"):
            assert protocol in document
        assert "coverage: 8/8 task records" in document

    def test_report_is_deterministic(self, tiny_store):
        assert generate_report(tiny_store, resamples=50) == generate_report(
            tiny_store, resamples=50
        )

    def test_filtered_report_scopes_every_section(self, tiny_store):
        query = tiny_store.select(adversary="none")
        document = generate_report(tiny_store, resamples=50, query=query)
        assert "adversary=none" in document
        assert "blackhole" not in document
        assert "coverage: 4/4 task records" in document

    def test_unknown_format_rejected(self, tiny_store):
        with pytest.raises(ValueError, match="format"):
            generate_report(tiny_store, fmt="pdf")


class TestHtml:
    def test_html_is_self_contained(self, tiny_store):
        document = generate_report(tiny_store, fmt="html", resamples=50)
        assert document.startswith("<!DOCTYPE html>")
        assert "<style>" in document
        assert "Pareto" in document
        # Self-contained: no external fetches.
        assert "http://" not in document
        assert "https://" not in document


class TestCli:
    def test_report_from_a_stream_file(self, tiny_stream, capsys):
        assert main(["report", str(tiny_stream), "--resamples", "50"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out

    def test_report_out_file_and_html(self, tiny_stream, tmp_path, capsys):
        out = tmp_path / "sub" / "report.html"
        code = main(
            [
                "report", str(tiny_stream),
                "--format", "html",
                "--out", str(out),
                "--resamples", "50",
            ]
        )
        assert code == 0
        assert out.read_text().startswith("<!DOCTYPE html>")
        assert "report (html)" in capsys.readouterr().out

    def test_run_dir_report_appends_a_telemetry_event(
        self, tiny_shard_dir, capsys
    ):
        assert main(
            ["report", str(tiny_shard_dir), "--resamples", "50"]
        ) == 0
        events_path = tiny_shard_dir / "events.jsonl"
        assert events_path.exists()
        events = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        report_events = [
            e for e in events if e.get("type") == "report"
        ]
        assert report_events, events
        assert report_events[-1]["payload"]["cells"] == 4
        assert report_events[-1]["payload"]["records"] == 8

    def test_filters_thread_through(self, tiny_stream, capsys):
        code = main(
            [
                "report", str(tiny_stream),
                "--protocol", "glr",
                "--adversary", "blackhole",
                "--resamples", "50",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "glr" in out
        assert "epidemic" not in out

    def test_bad_inputs_exit_2(self, tiny_stream, tmp_path, capsys):
        assert main(["report", str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(
            ["report", str(tiny_stream), "--protocol", "warp_drive"]
        ) == 2
        assert "unknown protocol" in capsys.readouterr().err
        assert main(
            ["report", str(tiny_stream), "--scenario", "no-such-cell"]
        ) == 2
        assert "match no cells" in capsys.readouterr().err
        assert main(
            ["report", str(tiny_stream), "--resamples", "0"]
        ) == 2
        assert "--resamples" in capsys.readouterr().err
