"""Tests for ASCII table/series rendering."""

from repro.analysis.render import render_series, render_table


class TestRenderTable:
    def test_contains_title_headers_and_rows(self):
        text = render_table(
            "Table X", ["col1", "col2"], [["a", 1], ["b", 2.5]]
        )
        assert "Table X" in text
        assert "col1" in text
        assert "2.50" in text  # float formatting
        assert "a" in text

    def test_column_alignment(self):
        text = render_table(
            "T", ["a", "b"], [["xxxx", "y"], ["x", "yyyy"]]
        )
        lines = text.splitlines()
        data_lines = lines[2:]
        widths = {len(line) for line in data_lines}
        assert len(widths) == 1  # all rows same rendered width

    def test_empty_rows(self):
        text = render_table("Empty", ["a"], [])
        assert "Empty" in text
        assert "a" in text


class TestRenderSeries:
    def test_series_layout(self):
        text = render_series(
            "Fig Y",
            "x",
            [1, 2, 3],
            {"glr": [10, 20, 30], "epidemic": [11, 21, 31]},
        )
        assert "Fig Y" in text
        assert "glr" in text
        assert "epidemic" in text
        assert "21" in text

    def test_each_x_becomes_a_row(self):
        text = render_series("F", "x", [1, 2], {"s": ["a", "b"]})
        lines = [ln for ln in text.splitlines() if ln and ln[0].isdigit()]
        assert len(lines) == 2
