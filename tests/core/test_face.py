"""Tests for face-routing hop selection."""


from repro.core.face import first_face_hop, next_face_hop
from repro.geometry.primitives import Point


class TestFirstFaceHop:
    def test_no_neighbors_returns_none(self):
        assert first_face_hop(Point(0, 0), Point(100, 0), {}) is None

    def test_picks_first_ccw_from_destination_ray(self):
        node = Point(0, 0)
        dest = Point(100, 0)  # ray points +x
        neighbors = {
            "up": Point(0, 10),  # 90° CCW from ray
            "down": Point(0, -10),  # 270° CCW from ray
        }
        assert first_face_hop(node, dest, neighbors) == "up"

    def test_neighbor_straight_toward_dest_not_zero_delta(self):
        # A neighbour exactly on the destination ray gets delta 2π, so a
        # slightly-CCW neighbour wins (the straight one would have been
        # a greedy candidate anyway).
        node = Point(0, 0)
        dest = Point(100, 0)
        neighbors = {
            "straight": Point(10, 0),
            "ccw": Point(10, 1),
        }
        assert first_face_hop(node, dest, neighbors) == "ccw"

    def test_single_neighbor_chosen(self):
        assert (
            first_face_hop(
                Point(0, 0), Point(100, 0), {"only": Point(-5, -5)}
            )
            == "only"
        )


class TestNextFaceHop:
    def test_continues_around_face(self):
        # Arrived along (0,0) -> (10,0); faces-on-right traversal picks
        # the first neighbour counter-clockwise from the reverse edge,
        # which is the diagonal (225° CCW from the back-pointing ray)
        # before the vertical neighbour (270°).
        node = Point(10, 0)
        prev_pos = Point(0, 0)
        neighbors = {
            "prev": Point(0, 0),
            "up": Point(10, 10),
            "diag": Point(20, 10),
        }
        nxt = next_face_hop(node, prev_pos, neighbors, prev_id="prev")
        assert nxt == "diag"

    def test_dead_end_doubles_back(self):
        node = Point(10, 0)
        prev_pos = Point(0, 0)
        neighbors = {"prev": Point(0, 0)}
        assert (
            next_face_hop(node, prev_pos, neighbors, prev_id="prev")
            == "prev"
        )

    def test_no_neighbors_returns_none(self):
        assert next_face_hop(Point(0, 0), Point(1, 0), {}, "prev") is None

    def test_prev_not_in_neighbors_dead_end_none(self):
        # Previous node left range and nothing else is around.
        assert (
            next_face_hop(Point(0, 0), Point(1, 0), {}, prev_id="gone")
            is None
        )

    def test_traversal_is_deterministic(self):
        node = Point(0, 0)
        prev_pos = Point(-10, 0)
        neighbors = {
            "a": Point(10, 1),
            "b": Point(10, -1),
            "prev": Point(-10, 0),
        }
        picks = {
            next_face_hop(node, prev_pos, neighbors, "prev")
            for _ in range(5)
        }
        assert len(picks) == 1
