"""Tests for face-routing hop selection."""


from repro.core.face import first_face_hop, next_face_hop
from repro.geometry.primitives import Point, distance


class TestFirstFaceHop:
    def test_no_neighbors_returns_none(self):
        assert first_face_hop(Point(0, 0), Point(100, 0), {}) is None

    def test_picks_first_ccw_from_destination_ray(self):
        node = Point(0, 0)
        dest = Point(100, 0)  # ray points +x
        neighbors = {
            "up": Point(0, 10),  # 90° CCW from ray
            "down": Point(0, -10),  # 270° CCW from ray
        }
        assert first_face_hop(node, dest, neighbors) == "up"

    def test_neighbor_straight_toward_dest_not_zero_delta(self):
        # A neighbour exactly on the destination ray gets delta 2π, so a
        # slightly-CCW neighbour wins (the straight one would have been
        # a greedy candidate anyway).
        node = Point(0, 0)
        dest = Point(100, 0)
        neighbors = {
            "straight": Point(10, 0),
            "ccw": Point(10, 1),
        }
        assert first_face_hop(node, dest, neighbors) == "ccw"

    def test_single_neighbor_chosen(self):
        assert (
            first_face_hop(
                Point(0, 0), Point(100, 0), {"only": Point(-5, -5)}
            )
            == "only"
        )


class TestNextFaceHop:
    def test_continues_around_face(self):
        # Arrived along (0,0) -> (10,0); faces-on-right traversal picks
        # the first neighbour counter-clockwise from the reverse edge,
        # which is the diagonal (225° CCW from the back-pointing ray)
        # before the vertical neighbour (270°).
        node = Point(10, 0)
        prev_pos = Point(0, 0)
        neighbors = {
            "prev": Point(0, 0),
            "up": Point(10, 10),
            "diag": Point(20, 10),
        }
        nxt = next_face_hop(node, prev_pos, neighbors, prev_id="prev")
        assert nxt == "diag"

    def test_dead_end_doubles_back(self):
        node = Point(10, 0)
        prev_pos = Point(0, 0)
        neighbors = {"prev": Point(0, 0)}
        assert (
            next_face_hop(node, prev_pos, neighbors, prev_id="prev")
            == "prev"
        )

    def test_no_neighbors_returns_none(self):
        assert next_face_hop(Point(0, 0), Point(1, 0), {}, "prev") is None

    def test_prev_not_in_neighbors_dead_end_none(self):
        # Previous node left range and nothing else is around.
        assert (
            next_face_hop(Point(0, 0), Point(1, 0), {}, prev_id="gone")
            is None
        )

    def test_traversal_is_deterministic(self):
        node = Point(0, 0)
        prev_pos = Point(-10, 0)
        neighbors = {
            "a": Point(10, 1),
            "b": Point(10, -1),
            "prev": Point(-10, 0),
        }
        picks = {
            next_face_hop(node, prev_pos, neighbors, "prev")
            for _ in range(5)
        }
        assert len(picks) == 1


class TestClockwiseVariants:
    def test_first_hop_mirror(self):
        # The CW entry is the mirror image of the CCW entry: with one
        # neighbour above the destination ray and one below, CCW picks
        # the upper, CW the lower.
        node = Point(0, 0)
        dest = Point(100, 0)
        neighbors = {"up": Point(0, 10), "down": Point(0, -10)}
        assert first_face_hop(node, dest, neighbors) == "up"
        assert (
            first_face_hop(node, dest, neighbors, clockwise=True) == "down"
        )

    def test_first_hop_cw_straight_neighbor_not_zero_delta(self):
        node = Point(0, 0)
        dest = Point(100, 0)
        neighbors = {"straight": Point(10, 0), "cw": Point(10, -1)}
        assert first_face_hop(node, dest, neighbors, clockwise=True) == "cw"

    def test_next_hop_mirror(self):
        node = Point(10, 0)
        prev_pos = Point(0, 0)
        neighbors = {
            "prev": Point(0, 0),
            "up": Point(10, 10),
            "down": Point(10, -10),
        }
        assert (
            next_face_hop(node, prev_pos, neighbors, prev_id="prev")
            == "down"
        )
        assert (
            next_face_hop(
                node, prev_pos, neighbors, prev_id="prev", clockwise=True
            )
            == "up"
        )

    def test_cw_dead_end_doubles_back(self):
        node = Point(10, 0)
        neighbors = {"prev": Point(0, 0)}
        assert (
            next_face_hop(
                node, Point(0, 0), neighbors, prev_id="prev", clockwise=True
            )
            == "prev"
        )


def _walk_face(positions, adjacency, start, dest, clockwise, max_hops=50):
    """Walk one face from ``start`` until a node beats the entry
    distance, returning (hops, exit node).  Pure-function replica of the
    copy-carried walk the protocol performs hop by hop."""
    start_distance = distance(positions[start], dest)

    def nbrs(node):
        return {n: positions[n] for n in adjacency[node]}

    current = first_face_hop(
        positions[start], dest, nbrs(start), clockwise=clockwise
    )
    assert current is not None
    prev, hops = start, 1
    while distance(positions[current], dest) >= start_distance:
        if hops >= max_hops:
            return hops, None
        nxt = next_face_hop(
            positions[current],
            positions[prev],
            nbrs(current),
            prev,
            clockwise=clockwise,
        )
        assert nxt is not None
        prev, current = current, nxt
        hops += 1
    return hops, current


class TestTwoFaceGolden:
    """2FACE on a planar probe graph: the walks traverse the same face
    in opposite directions, and taking whichever finishes first beats
    the single-direction walk's hop count."""

    # A ring face around a void between the entry node and the
    # destination: four hops over the top (the CCW side), two hops
    # under the bottom (the CW side).  Every node on the ring except
    # the exits stays at least the entry distance (10) from the
    # destination, so neither walk exits early.
    POSITIONS = {
        "u": Point(0, 0),
        "a1": Point(-1, 3),
        "a2": Point(0, 5),
        "a3": Point(2, 6.5),
        "a4": Point(5, 5),
        "b1": Point(-1, -3),
        "b2": Point(4, -3),
    }
    ADJACENCY = {
        "u": ("a1", "b1"),
        "a1": ("u", "a2"),
        "a2": ("a1", "a3"),
        "a3": ("a2", "a4"),
        "a4": ("a3",),
        "b1": ("u", "b2"),
        "b2": ("b1",),
    }
    DEST = Point(10, 0)

    def test_directions_take_different_routes(self):
        ccw_hops, ccw_exit = _walk_face(
            self.POSITIONS, self.ADJACENCY, "u", self.DEST, clockwise=False
        )
        cw_hops, cw_exit = _walk_face(
            self.POSITIONS, self.ADJACENCY, "u", self.DEST, clockwise=True
        )
        assert ccw_exit == "a4"
        assert cw_exit == "b2"
        assert ccw_hops == 4
        assert cw_hops == 2

    def test_bidirectional_beats_single_walk(self):
        ccw_hops, _ = _walk_face(
            self.POSITIONS, self.ADJACENCY, "u", self.DEST, clockwise=False
        )
        cw_hops, _ = _walk_face(
            self.POSITIONS, self.ADJACENCY, "u", self.DEST, clockwise=True
        )
        # Single-direction recovery always pays the CCW cost; 2FACE
        # completes when the faster direction exits.
        assert min(ccw_hops, cw_hops) < ccw_hops

    def test_exit_nodes_make_greedy_progress(self):
        start_distance = distance(self.POSITIONS["u"], self.DEST)
        for clockwise in (False, True):
            _, exit_node = _walk_face(
                self.POSITIONS, self.ADJACENCY, "u", self.DEST, clockwise
            )
            assert (
                distance(self.POSITIONS[exit_node], self.DEST)
                < start_distance
            )
