"""Unit and integration tests for the GLR protocol.

The unit layer exercises config validation and source-side behaviour on
tiny static worlds; the integration layer runs small end-to-end
simulations and checks delivery plus the protocol invariants the paper
states (copy counts, custody conservation, storage bounds).
"""

import pytest

from repro.core.location import LocationMode
from repro.core.protocol import GLRConfig, GLRProtocol
from repro.experiments.runner import build_world
from repro.experiments.scenarios import Scenario
from repro.geometry.primitives import Point
from repro.mobility.base import Region
from repro.mobility.static import StaticMobility
from repro.sim.world import World, WorldConfig
from repro.sim.radio import RadioConfig


class TestConfigValidation:
    def test_defaults_valid(self):
        GLRConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"check_interval": 0.0},
            {"connectivity_threshold": 1.5},
            {"sparse_copies": 0},
            {"copies_override": 0},
            {"custody_timeout": 0.0},
            {"storage_limit": 0},
            {"max_face_steps": 0},
            {"face_cooldown": -1.0},
            {"progress_margin_fraction": 1.0},
            {"range_guard_fraction": 0.0},
            {"stale_patience_rounds": 0},
            {"stale_age": 0.0},
            {"failed_hop_exclusion": -1.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GLRConfig(**kwargs)


def build_static_world(placements, radius=100.0, config=None, seed=1):
    region = Region(1000.0, 1000.0)
    mobility = StaticMobility(region, placements)
    world_config = WorldConfig(
        radio=RadioConfig(range_m=radius), seed=seed
    )
    glr_config = config if config is not None else GLRConfig()
    world = World(
        mobility, lambda node: GLRProtocol(glr_config), world_config
    )
    return world


class TestStaticDelivery:
    def test_direct_neighbor_delivery(self):
        world = build_static_world(
            {0: Point(0, 0), 1: Point(50, 0)}
        )
        world.schedule_message(0, 1, at_time=1.0)
        metrics = world.run(until=30.0)
        assert metrics.messages_delivered == 1
        assert metrics.average_hops == 1

    def test_chain_delivery_multi_hop(self):
        placements = {
            i: Point(90.0 * i, 0.0) for i in range(5)
        }  # chain with 90 m spacing, 100 m radius
        world = build_static_world(placements)
        world.schedule_message(0, 4, at_time=1.0)
        metrics = world.run(until=60.0)
        assert metrics.messages_delivered == 1
        assert metrics.average_hops >= 4  # must traverse the chain

    def test_disconnected_static_world_stores_forever(self):
        world = build_static_world(
            {0: Point(0, 0), 1: Point(900, 900)}
        )
        world.schedule_message(0, 1, at_time=1.0)
        metrics = world.run(until=60.0)
        assert metrics.messages_delivered == 0
        # The copy must still be held (store state), not lost.
        assert world.protocols[0].storage_occupancy() >= 1

    def test_source_spawns_configured_copies(self):
        placements = {
            0: Point(0, 0),
            1: Point(80, 0),
            2: Point(60, 60),
            3: Point(0, 80),
            4: Point(500, 500),
        }
        world = build_static_world(
            placements, config=GLRConfig(copies_override=3)
        )
        world.schedule_message(0, 4, at_time=1.0)
        source = world.protocols[0]
        world.sim.run(until=1.5)  # after creation, before much routing
        branches = {
            copy_id[1] for copy_id in source.dual.store.keys()
        } | {copy_id[1] for copy_id in source.dual.cache.keys()}
        assert branches == {"max", "min", "mid"}


class TestAlgorithmOneIntegration:
    def test_sparse_scenario_spawns_three_copies(self):
        scenario = Scenario(
            radius=50.0, message_count=1, sim_time=5.0, seed=3
        )
        world = build_world(scenario, "glr")
        world.run(until=3.0)
        total_copies = sum(
            p.storage_occupancy() for p in world.protocols.values()
        )
        # 3 copies of the single message (minus any already delivered).
        assert total_copies in (0, 1, 2, 3)
        source_copies = [
            p for p in world.protocols.values() if p.dual.occupancy()
        ]
        if source_copies:
            assert max(
                p.dual.occupancy() for p in source_copies
            ) <= 3

    def test_dense_scenario_spawns_single_copy(self):
        scenario = Scenario(
            radius=250.0, message_count=1, sim_time=5.0, seed=3
        )
        world = build_world(scenario, "glr")
        world.run(until=1.2)
        total = sum(
            p.storage_occupancy() for p in world.protocols.values()
        )
        assert total <= 1


class TestEndToEnd:
    @pytest.mark.slow
    def test_delivers_at_100m_with_high_ratio(self):
        scenario = Scenario(
            radius=100.0, message_count=30, sim_time=240.0, seed=5
        )
        world = build_world(scenario, "glr")
        metrics = world.run(until=scenario.sim_time, protocol_name="glr")
        assert metrics.delivery_ratio >= 0.9
        assert metrics.average_latency is not None
        assert metrics.average_latency > 0

    @pytest.mark.slow
    def test_storage_limit_respected(self):
        scenario = Scenario(
            radius=50.0, message_count=60, sim_time=200.0, seed=5
        )
        limit = 5
        world = build_world(scenario, "glr", buffer_limit=limit)
        metrics = world.run(until=scenario.sim_time, protocol_name="glr")
        assert metrics.max_peak_storage <= limit

    @pytest.mark.slow
    def test_custody_off_fire_and_forget(self):
        scenario = Scenario(
            radius=100.0, message_count=20, sim_time=180.0, seed=5
        )
        world = build_world(
            scenario, "glr", glr_config=GLRConfig(custody=False)
        )
        metrics = world.run(until=scenario.sim_time, protocol_name="glr")
        # Without custody some messages may be lost, but the machinery
        # must still deliver a reasonable share.
        assert metrics.delivery_ratio > 0.5
        for protocol in world.protocols.values():
            assert len(protocol.dual.cache) == 0  # cache never used

    @pytest.mark.slow
    def test_oracle_location_at_least_as_good_as_none(self):
        scenario = Scenario(
            radius=100.0, message_count=25, sim_time=240.0, seed=6
        )
        results = {}
        for mode in (LocationMode.ORACLE, LocationMode.NONE):
            world = build_world(
                scenario,
                "glr",
                glr_config=GLRConfig(location_mode=mode),
            )
            results[mode] = world.run(
                until=scenario.sim_time, protocol_name="glr"
            )
        oracle, none = results[LocationMode.ORACLE], results[LocationMode.NONE]
        assert oracle.delivery_ratio >= none.delivery_ratio - 0.1
        if (
            oracle.average_latency is not None
            and none.average_latency is not None
        ):
            assert oracle.average_latency <= none.average_latency * 1.5

    @pytest.mark.slow
    def test_hop_counts_exceed_epidemic(self):
        # Paper Table 6: GLR hop counts exceed epidemic's.
        scenario = Scenario(
            radius=100.0, message_count=30, sim_time=240.0, seed=7
        )
        glr = build_world(scenario, "glr").run(
            until=scenario.sim_time, protocol_name="glr"
        )
        epidemic = build_world(scenario, "epidemic").run(
            until=scenario.sim_time, protocol_name="epidemic"
        )
        assert glr.average_hops is not None
        assert epidemic.average_hops is not None
        assert glr.average_hops > epidemic.average_hops

    @pytest.mark.slow
    def test_storage_far_below_epidemic(self):
        # Paper Tables 4/5: GLR needs far less storage than epidemic.
        scenario = Scenario(
            radius=100.0, message_count=40, sim_time=240.0, seed=8
        )
        glr = build_world(scenario, "glr").run(
            until=scenario.sim_time, protocol_name="glr"
        )
        epidemic = build_world(scenario, "epidemic").run(
            until=scenario.sim_time, protocol_name="epidemic"
        )
        assert glr.average_peak_storage < epidemic.average_peak_storage


class TestReproducibility:
    @pytest.mark.slow
    def test_same_seed_same_metrics(self):
        scenario = Scenario(
            radius=100.0, message_count=15, sim_time=120.0, seed=11
        )
        a = build_world(scenario, "glr").run(
            until=scenario.sim_time, protocol_name="glr"
        )
        b = build_world(scenario, "glr").run(
            until=scenario.sim_time, protocol_name="glr"
        )
        assert a.messages_delivered == b.messages_delivered
        assert a.average_latency == b.average_latency
        assert a.frames_sent == b.frames_sent

    @pytest.mark.slow
    def test_different_seed_different_trajectories(self):
        base = Scenario(
            radius=100.0, message_count=15, sim_time=120.0, seed=11
        )
        a = build_world(base, "glr").run(
            until=base.sim_time, protocol_name="glr"
        )
        b = build_world(base.with_seed(99), "glr").run(
            until=base.sim_time, protocol_name="glr"
        )
        assert a.frames_sent != b.frames_sent


class TestTwoFace:
    """Bi-directional face traversal (GLRConfig.two_face)."""

    # A concave static topology: the destination lies across a void
    # ringed by relays, with a long counter-clockwise arc over the top
    # (a1..a4, a delivery dead end) and a short clockwise arc under
    # the bottom (b1-b2) that connects onward through c1-c2.  Greedy
    # forwarding bottoms out at u, so recovery direction decides the
    # route.  Coordinates are offset to sit inside the region.
    _RAW = {
        "u": (0, 0),
        "a1": (-30, 90),
        "a2": (0, 150),
        "a3": (60, 195),
        "a4": (140, 150),
        "b1": (-30, -90),
        "b2": (60, -90),
        "c1": (150, -60),
        "c2": (240, -30),
        "dest": (300, 0),
    }
    PLACEMENTS = {
        name: Point(x + 300.0, y + 300.0) for name, (x, y) in _RAW.items()
    }

    def _run(self, two_face: bool):
        mobility = StaticMobility(Region(1000.0, 1000.0), self.PLACEMENTS)
        config = GLRConfig(two_face=two_face)
        world = World(
            mobility,
            lambda node: GLRProtocol(config),
            WorldConfig(radio=RadioConfig(range_m=100.0), seed=1),
        )
        world.schedule_message("u", "dest", at_time=1.0)
        metrics = world.run(until=120.0)
        return metrics, world.protocols["u"]

    def test_single_direction_takes_the_long_way(self):
        metrics, source = self._run(two_face=False)
        assert metrics.messages_delivered == 1
        assert source.two_face_launches == 0
        assert source.face_entries > 0

    def test_two_face_launches_mirror_walk(self):
        metrics, source = self._run(two_face=True)
        assert metrics.messages_delivered == 1
        assert source.two_face_launches > 0

    def test_two_face_beats_single_direction(self):
        single, _ = self._run(two_face=False)
        double, _ = self._run(two_face=True)
        # The clockwise twin exits the face after two hops and delivers
        # through the bottom chain; the counter-clockwise-only walk
        # dead-ends at the top and must circumnavigate.
        assert double.average_hops < single.average_hops
        assert double.average_latency < single.average_latency

    def test_two_face_deterministic(self):
        a, _ = self._run(two_face=True)
        b, _ = self._run(two_face=True)
        assert a.average_latency == b.average_latency
        assert a.frames_sent == b.frames_sent

    def test_two_face_default_off(self):
        assert GLRConfig().two_face is False

    def test_two_face_sweepable(self):
        from repro.experiments.protocols import ProtocolConfig

        config = ProtocolConfig.of("glr", two_face=True)
        assert config.build().two_face is True
