"""Tests for the custody transfer manager."""

import pytest

from repro.core.custody import CustodyManager
from repro.sim.engine import Simulator
from repro.sim.storage import DualStore


def build(timeout=5.0, on_returned=None):
    sim = Simulator()
    store = DualStore()
    manager = CustodyManager(
        schedule=sim.schedule,
        store=store,
        timeout=timeout,
        on_returned=on_returned,
    )
    return sim, store, manager


class TestCustodyFlow:
    def test_sent_moves_to_cache(self):
        sim, store, manager = build()
        store.add_to_store("m", "x")
        manager.on_sent("m")
        assert "m" in store.cache
        assert manager.pending() == 1

    def test_ack_clears_cache_and_timer(self):
        sim, store, manager = build()
        store.add_to_store("m", "x")
        manager.on_sent("m")
        assert manager.on_ack("m")
        assert store.occupancy() == 0
        assert manager.pending() == 0
        sim.run(until=100.0)  # timer must not fire
        assert store.occupancy() == 0
        assert manager.timeouts == 0
        assert manager.acks_received == 1

    def test_timeout_returns_to_store(self):
        returned = []
        sim, store, manager = build(timeout=5.0, on_returned=returned.append)
        store.add_to_store("m", "x")
        manager.on_sent("m")
        sim.run(until=10.0)
        assert "m" in store.store
        assert "m" not in store.cache
        assert manager.timeouts == 1
        assert returned == ["m"]

    def test_ack_for_unknown_key(self):
        _, _, manager = build()
        assert not manager.on_ack("ghost")

    def test_resend_rearms_timer(self):
        sim, store, manager = build(timeout=5.0)
        store.add_to_store("m", "x")
        manager.on_sent("m")
        sim.run(until=6.0)  # timeout, back to store
        manager.on_sent("m")  # re-sent
        assert "m" in store.cache
        sim.run(until=20.0)
        assert manager.timeouts == 2

    def test_sent_for_missing_key_is_noop(self):
        sim, store, manager = build()
        manager.on_sent("ghost")
        assert manager.pending() == 0

    def test_cancel_all(self):
        sim, store, manager = build()
        for key in ("a", "b"):
            store.add_to_store(key, key)
            manager.on_sent(key)
        manager.cancel_all()
        sim.run(until=100.0)
        assert manager.timeouts == 0
        # Items remain parked in the cache (end-of-sim state).
        assert len(store.cache) == 2

    def test_invalid_timeout(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CustodyManager(sim.schedule, DualStore(), timeout=0.0)
