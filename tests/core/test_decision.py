"""Tests for Algorithm 1 (copy-count decision)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.decision import decide_copies

PAPER_AREA = 1500.0 * 300.0


class TestPaperRegimes:
    """The decision must reproduce the paper's own configuration:
    3 copies at 50/100 m, 1 copy at 150/200/250 m (Tables 5, 6)."""

    @pytest.mark.parametrize("radius", [50.0, 100.0])
    def test_sparse_radii_use_three_copies(self, radius):
        decision = decide_copies(50, radius, PAPER_AREA)
        assert decision.copies == 3
        assert decision.sparse

    @pytest.mark.parametrize("radius", [150.0, 200.0, 250.0])
    def test_dense_radii_use_single_copy(self, radius):
        decision = decide_copies(50, radius, PAPER_AREA)
        assert decision.copies == 1
        assert not decision.sparse

    def test_confidence_reported(self):
        sparse = decide_copies(50, 50.0, PAPER_AREA)
        dense = decide_copies(50, 250.0, PAPER_AREA)
        assert sparse.confidence < dense.confidence


class TestKnobs:
    def test_custom_sparse_copies(self):
        decision = decide_copies(50, 50.0, PAPER_AREA, sparse_copies=7)
        assert decision.copies == 7

    def test_max_copies_cap(self):
        decision = decide_copies(
            50, 50.0, PAPER_AREA, sparse_copies=7, max_copies=4
        )
        assert decision.copies == 4

    def test_storage_headroom_scales_down(self):
        decision = decide_copies(
            50, 50.0, PAPER_AREA, sparse_copies=6, storage_headroom=0.5
        )
        assert decision.copies == 3

    def test_storage_headroom_never_below_one(self):
        decision = decide_copies(
            50, 50.0, PAPER_AREA, sparse_copies=3, storage_headroom=0.01
        )
        assert decision.copies == 1

    def test_tiny_network_single_copy(self):
        assert decide_copies(1, 50.0, PAPER_AREA).copies == 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            decide_copies(50, 50.0, PAPER_AREA, threshold=0.0)
        with pytest.raises(ValueError):
            decide_copies(50, 50.0, PAPER_AREA, sparse_copies=0)
        with pytest.raises(ValueError):
            decide_copies(50, 50.0, PAPER_AREA, storage_headroom=2.0)

    @given(st.floats(min_value=10.0, max_value=500.0))
    def test_copies_weakly_decrease_with_radius(self, radius):
        a = decide_copies(50, radius, PAPER_AREA)
        b = decide_copies(50, radius + 20.0, PAPER_AREA)
        assert b.copies <= a.copies
