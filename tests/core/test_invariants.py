"""System-level invariants of GLR under simulation.

These tests run short end-to-end simulations and then audit internal
state across every node — the properties the paper's design implies:

- **copy conservation** (custody + unlimited storage): a message is
  either delivered or at least one live copy of it exists in some
  node's Store/Cache.  This is exactly what custody transfer buys
  ("a message is not deleted by the sender unless the corresponding
  receiver has notified the sender") and it is the invariant the
  copy-annihilation bug class breaks.
- **copy population bound**: the number of live copies of one message
  never exceeds the number injected (custody merging can shrink it;
  nothing may grow it) plus duplicates bred by lost ACKs, which must
  stay bounded by the custody retry count.
- **flag integrity**: every stored copy carries one of the paper's
  tree flags.
"""

import collections

import pytest

from repro.core.protocol import GLRConfig
from repro.experiments.runner import build_world
from repro.experiments.scenarios import Scenario
from repro.graphs.trees import Branch


def live_copies_by_message(world):
    """Count live copies per message uid across all Stores and Caches."""
    counts = collections.Counter()
    for protocol in world.protocols.values():
        for area in (protocol.dual.store, protocol.dual.cache):
            for copy_id in area.keys():
                counts[copy_id[0]] += 1
    return counts


@pytest.mark.slow
class TestCopyConservation:
    @pytest.mark.parametrize("radius", [50.0, 100.0])
    def test_no_message_vanishes_with_unlimited_storage(self, radius):
        scenario = Scenario(
            radius=radius, message_count=25, sim_time=200.0, seed=13
        )
        world = build_world(scenario, "glr")
        metrics = world.run(until=scenario.sim_time, protocol_name="glr")

        live = live_copies_by_message(world)
        lost = []
        for uid in range(25):
            # uids are globally allocated; map via created messages.
            pass
        # Collect created message uids from the metrics collector.
        created_uids = set(world.metrics._created)  # test-only peek
        for uid in created_uids:
            if not world.metrics.is_delivered(uid) and live[uid] == 0:
                lost.append(uid)
        assert not lost, (
            f"messages neither delivered nor held anywhere: {lost} "
            f"(delivered {metrics.messages_delivered}/25)"
        )

    def test_copy_population_bounded(self):
        scenario = Scenario(
            radius=100.0, message_count=20, sim_time=150.0, seed=17
        )
        world = build_world(scenario, "glr")
        world.run(until=scenario.sim_time, protocol_name="glr")
        live = live_copies_by_message(world)
        # Algorithm 1 injects 3 copies at 100 m.  Distinct copy ids per
        # message are at most 3, and each copy id lives at most once
        # per node; transient duplicates from lost ACKs are bounded in
        # practice — assert a generous cap that still catches breeding.
        for uid, count in live.items():
            assert count <= 9, f"message {uid} has {count} live copies"

    def test_all_flags_valid(self):
        scenario = Scenario(
            radius=100.0, message_count=15, sim_time=100.0, seed=19
        )
        world = build_world(scenario, "glr")
        world.run(until=scenario.sim_time, protocol_name="glr")
        valid = {b.value for b in Branch}
        for protocol in world.protocols.values():
            for area in (protocol.dual.store, protocol.dual.cache):
                for copy_id in area.keys():
                    assert copy_id[1] in valid


@pytest.mark.slow
class TestCountersConsistent:
    def test_protocol_counters_non_negative_and_coherent(self):
        scenario = Scenario(
            radius=100.0, message_count=20, sim_time=150.0, seed=23
        )
        world = build_world(scenario, "glr")
        world.run(until=scenario.sim_time, protocol_name="glr")
        for protocol in world.protocols.values():
            assert protocol.rounds_run >= 0
            assert protocol.face_steps_taken >= 0
            assert protocol.greedy_forwards >= 0
            if protocol.custody is not None:
                assert protocol.custody.acks_received >= 0
                assert protocol.custody.timeouts >= 0

    def test_storage_peaks_monotone_with_occupancy(self):
        scenario = Scenario(
            radius=100.0, message_count=20, sim_time=150.0, seed=29
        )
        world = build_world(scenario, "glr")
        world.run(until=scenario.sim_time, protocol_name="glr")
        for protocol in world.protocols.values():
            assert protocol.storage_peak() >= protocol.storage_occupancy()


@pytest.mark.slow
class TestStorageLimitInteraction:
    def test_eviction_can_lose_messages_but_never_corrupts(self):
        scenario = Scenario(
            radius=50.0, message_count=40, sim_time=150.0, seed=31
        )
        world = build_world(
            scenario,
            "glr",
            glr_config=GLRConfig(storage_limit=3),
        )
        metrics = world.run(until=scenario.sim_time, protocol_name="glr")
        # Tight storage may drop messages (delivery < 1), but every
        # surviving structure stays within its limit.
        for protocol in world.protocols.values():
            assert protocol.dual.occupancy() <= 3
            assert protocol.dual.peak_occupancy <= 3
        assert 0.0 <= metrics.delivery_ratio <= 1.0
