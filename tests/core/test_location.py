"""Tests for location modes, guesses, and staleness."""

import random

from repro.core.location import (
    LocationMode,
    initial_location_guess,
    is_belief_stale,
    perturbed_location,
)
from repro.mobility.base import Region


class TestModes:
    def test_three_modes_exist(self):
        assert {m.value for m in LocationMode} == {"oracle", "source", "none"}


class TestGuesses:
    def test_guess_inside_region(self):
        region = Region(1500.0, 300.0)
        rng = random.Random(1)
        for _ in range(50):
            assert region.contains(initial_location_guess(region, rng))

    def test_perturbed_inside_region(self):
        region = Region(1500.0, 300.0)
        rng = random.Random(2)
        for _ in range(50):
            assert region.contains(perturbed_location(region, rng))

    def test_guesses_deterministic_per_rng(self):
        region = Region(100.0, 100.0)
        a = initial_location_guess(region, random.Random(7))
        b = initial_location_guess(region, random.Random(7))
        assert a == b

    def test_perturbation_varies(self):
        region = Region(100.0, 100.0)
        rng = random.Random(3)
        points = {perturbed_location(region, rng) for _ in range(10)}
        assert len(points) > 1


class TestStaleness:
    def test_fresh_belief_not_stale(self):
        assert not is_belief_stale(belief_time=95.0, now=100.0, max_age=10.0)

    def test_old_belief_stale(self):
        assert is_belief_stale(belief_time=0.0, now=100.0, max_age=10.0)

    def test_pure_guess_always_stale(self):
        assert is_belief_stale(
            belief_time=float("-inf"), now=0.0, max_age=1e9
        )

    def test_boundary_not_stale(self):
        assert not is_belief_stale(belief_time=90.0, now=100.0, max_age=10.0)
