"""Tests for the mobility registry and MobilityConfig."""

import pytest

from repro.mobility import (
    GaussMarkovMobility,
    ManhattanGridMobility,
    MobilityConfig,
    RandomWalkMobility,
    RandomWaypointMobility,
    ReferencePointGroupMobility,
    StaticMobility,
    TraceMobility,
    as_mobility_config,
    available_models,
    build_mobility,
    register_model,
    save_ns2_trace,
)
from repro.mobility.base import MobilityModel, Region


class TestMobilityConfig:
    def test_model_name_normalized(self):
        assert MobilityConfig("Gauss-Markov").model == "gauss_markov"
        assert MobilityConfig.of("RWP").model == "rwp"

    def test_params_sorted_for_stable_hash(self):
        a = MobilityConfig.of("rpgm", n_groups=2, group_radius=40.0)
        b = MobilityConfig.of("rpgm", group_radius=40.0, n_groups=2)
        assert a == b
        assert hash(a) == hash(b)

    def test_integral_floats_normalize_to_ints(self):
        # 40 vs 40.0 (Python literal vs JSON spec) must canonicalise to
        # one representation, or cache keys silently diverge.
        a = MobilityConfig.of("rpgm", group_radius=40)
        b = MobilityConfig.of("rpgm", group_radius=40.0)
        assert a == b
        assert a.params == b.params == (("group_radius", 40),)
        # Non-integral floats are untouched.
        c = MobilityConfig.of("gauss_markov", alpha=0.75)
        assert c.params == (("alpha", 0.75),)

    def test_params_accept_pair_sequences(self):
        # dataclasses.asdict round trips params as pair lists.
        a = MobilityConfig(model="rpgm", params=(("n_groups", 2),))
        b = MobilityConfig.of("rpgm", n_groups=2)
        assert a == b

    def test_rejects_non_scalar_params(self):
        with pytest.raises(ValueError):
            MobilityConfig.of("rwp", speeds=[1.0, 2.0])

    def test_rejects_empty_model(self):
        with pytest.raises(ValueError):
            MobilityConfig("")

    def test_str_forms(self):
        assert str(MobilityConfig.of("manhattan")) == "manhattan"
        assert (
            str(MobilityConfig.of("rpgm", n_groups=5))
            == "rpgm(n_groups=5)"
        )

    def test_json_round_trip(self):
        cfg = MobilityConfig.of("gauss_markov", alpha=0.9)
        assert as_mobility_config(cfg.to_json()) == cfg


class TestAsMobilityConfig:
    def test_none_passes_through(self):
        assert as_mobility_config(None) is None

    def test_string_form(self):
        assert as_mobility_config("gauss-markov") == MobilityConfig.of(
            "gauss_markov"
        )

    def test_mapping_with_params_key(self):
        cfg = as_mobility_config(
            {"model": "rpgm", "params": {"n_groups": 5}}
        )
        assert cfg == MobilityConfig.of("rpgm", n_groups=5)

    def test_mapping_with_inline_params(self):
        cfg = as_mobility_config({"model": "manhattan", "blocks_x": 3})
        assert cfg == MobilityConfig.of("manhattan", blocks_x=3)

    def test_mapping_rejects_mixed_forms(self):
        with pytest.raises(ValueError):
            as_mobility_config(
                {"model": "rpgm", "params": {}, "n_groups": 5}
            )

    def test_mapping_without_model_rejected(self):
        with pytest.raises(ValueError):
            as_mobility_config({"params": {}})

    def test_non_mapping_params_rejected(self):
        # A malformed JSON spec must produce the CLI's clean exit-2
        # ValueError path, not a raw TypeError traceback.
        with pytest.raises(ValueError, match="must be a mapping"):
            as_mobility_config({"model": "rwp", "params": 5})
        with pytest.raises(ValueError, match="must be a mapping"):
            as_mobility_config({"model": "rwp", "params": "fast"})

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown mobility model"):
            as_mobility_config("teleport")

    def test_builder_positionals_counted_not_named(self):
        # Third-party builders may name their runner-supplied leading
        # params anything; only params past the first three are config.
        from repro.mobility import registry

        register_model(
            "oddly_named", lambda ids, reg, s, wobble=1.0: StaticMobility.uniform(ids, reg, 1)
        )
        try:
            cfg = as_mobility_config("oddly-named")  # no required params
            assert cfg.params == ()
            as_mobility_config({"model": "oddly_named", "wobble": 2.0})
            with pytest.raises(ValueError, match="does not accept"):
                as_mobility_config({"model": "oddly_named", "bogus": 1})
        finally:
            registry._REGISTRY.pop("oddly_named", None)

    def test_missing_required_params_fail_at_coercion_time(self):
        # trace without a path must die at spec load, not mid-campaign.
        with pytest.raises(ValueError, match="requires parameters"):
            as_mobility_config("trace")
        with pytest.raises(ValueError, match=r"\['path'\]"):
            as_mobility_config({"model": "trace"})
        as_mobility_config({"model": "trace", "path": "x.tcl"})

    def test_typoed_params_fail_at_coercion_time(self):
        # A bad campaign spec must die at load, not mid-campaign in a
        # worker process.
        with pytest.raises(ValueError, match="does not accept"):
            as_mobility_config({"model": "rpgm", "n_group": 5})
        with pytest.raises(ValueError, match="alhpa"):
            as_mobility_config({"model": "gauss_markov", "alhpa": 0.5})
        with pytest.raises(ValueError, match="does not accept"):
            as_mobility_config({"model": "static", "speed": 3.0})
        # Valid params still pass.
        as_mobility_config({"model": "rpgm", "n_groups": 5})

    def test_alias_resolves_to_canonical(self):
        assert as_mobility_config("rwp").model == "random_waypoint"
        assert as_mobility_config("group").model == "rpgm"

    def test_unsupported_type_rejected(self):
        with pytest.raises(ValueError):
            as_mobility_config(42)


class TestBuildMobility:
    REGION = Region(400.0, 200.0)
    NODES = list(range(8))

    @pytest.mark.parametrize("name,expected_cls", [
        ("random_waypoint", RandomWaypointMobility),
        ("rwp", RandomWaypointMobility),
        ("random_walk", RandomWalkMobility),
        ("gauss_markov", GaussMarkovMobility),
        ("gauss-markov", GaussMarkovMobility),
        ("rpgm", ReferencePointGroupMobility),
        ("manhattan", ManhattanGridMobility),
        ("static", StaticMobility),
    ])
    def test_builds_every_registered_model(self, name, expected_cls):
        model = build_mobility(
            as_mobility_config(name), self.NODES, self.REGION, seed=3
        )
        assert isinstance(model, expected_cls)
        assert model.node_ids == self.NODES
        p = model.position(0, 10.0)
        assert self.REGION.contains(p)

    def test_params_reach_the_model(self):
        cfg = MobilityConfig.of("rpgm", n_groups=2, group_radius=25.0)
        model = build_mobility(cfg, self.NODES, self.REGION, seed=3)
        assert model.n_groups == 2
        assert model.group_radius == 25.0

    def test_bad_params_raise_value_error(self):
        cfg = MobilityConfig.of("manhattan", warp_factor=9)
        with pytest.raises(ValueError, match="bad parameters"):
            build_mobility(cfg, self.NODES, self.REGION, seed=3)

    def test_deterministic_across_builds(self):
        cfg = MobilityConfig.of("gauss_markov")
        a = build_mobility(cfg, self.NODES, self.REGION, seed=5)
        b = build_mobility(cfg, self.NODES, self.REGION, seed=5)
        for t in (0.0, 33.3, 240.0):
            assert a.position(3, t) == b.position(3, t)

    def test_custom_registration(self):
        class Pinned(MobilityModel):
            def __init__(self, node_ids, region, seed):
                super().__init__(node_ids, region)

            def position(self, node, t):
                self.validate_time(t)
                from repro.geometry.primitives import Point

                return Point(1.0, 1.0)

        register_model("pinned_test_model", Pinned)
        try:
            assert "pinned_test_model" in available_models()
            model = build_mobility(
                as_mobility_config("pinned-test-model"),
                self.NODES,
                self.REGION,
                seed=1,
            )
            assert model.position(0, 5.0).x == 1.0
        finally:
            from repro.mobility import registry

            registry._REGISTRY.pop("pinned_test_model", None)

    def test_registration_shadows_builtin_alias(self):
        """A direct registration under an alias name must win over the
        alias ("grid" normally aliases manhattan)."""
        from repro.mobility import registry

        class Shadow(StaticMobility):
            @classmethod
            def build(cls, node_ids, region, seed):
                return cls.uniform(node_ids, region, seed)

        register_model("grid", Shadow.build)
        try:
            model = build_mobility(
                as_mobility_config("grid"), self.NODES, self.REGION, seed=1
            )
            assert isinstance(model, Shadow)
        finally:
            registry._REGISTRY.pop("grid", None)
        # With the shadow gone the alias resolves to manhattan again.
        assert as_mobility_config("grid").model == "manhattan"


class TestTraceBuilder:
    def test_trace_model_from_exported_file(self, tmp_path):
        region = Region(400.0, 200.0)
        source = RandomWaypointMobility(list(range(6)), region, seed=9)
        path = tmp_path / "scenario.tcl"
        save_ns2_trace(source, path, until=60.0)
        model = build_mobility(
            MobilityConfig.of("trace", path=str(path)),
            list(range(6)),
            region,
            seed=1,
        )
        assert isinstance(model, TraceMobility)
        for node in range(6):
            a = source.position(node, 30.0)
            b = model.position(node, 30.0)
            assert a.distance_to(b) < 0.5

    def test_trace_restricted_to_scenario_nodes(self, tmp_path):
        region = Region(400.0, 200.0)
        source = RandomWaypointMobility(list(range(6)), region, seed=9)
        path = tmp_path / "scenario.tcl"
        save_ns2_trace(source, path, until=30.0)
        model = build_mobility(
            MobilityConfig.of("trace", path=str(path)),
            [0, 1, 2],
            region,
            seed=1,
        )
        assert model.node_ids == [0, 1, 2]

    def test_trace_missing_nodes_rejected(self, tmp_path):
        region = Region(400.0, 200.0)
        source = RandomWaypointMobility([0, 1], region, seed=9)
        path = tmp_path / "scenario.tcl"
        save_ns2_trace(source, path, until=30.0)
        with pytest.raises(ValueError, match="no trajectory"):
            build_mobility(
                MobilityConfig.of("trace", path=str(path)),
                list(range(5)),
                region,
                seed=1,
            )

    def test_trace_without_path_rejected(self):
        with pytest.raises(ValueError, match="path"):
            build_mobility(
                MobilityConfig.of("trace"), [0, 1], Region(10, 10), seed=1
            )
