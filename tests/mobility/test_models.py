"""Tests for mobility models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.primitives import Point
from repro.mobility.base import Region
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.static import StaticMobility, uniform_random_positions


class TestRegion:
    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            Region(0.0, 100.0)
        with pytest.raises(ValueError):
            Region(100.0, -1.0)

    def test_area(self):
        assert Region(1500.0, 300.0).area == 450_000.0

    def test_contains(self):
        r = Region(10.0, 10.0)
        assert r.contains(Point(5, 5))
        assert r.contains(Point(0, 0))
        assert not r.contains(Point(11, 5))

    def test_clamp(self):
        r = Region(10.0, 10.0)
        assert r.clamp(Point(-5, 15)) == Point(0, 10)


class TestStatic:
    def test_positions_never_change(self, small_region):
        m = StaticMobility.uniform([0, 1, 2], small_region, seed=1)
        p0 = m.position(0, 0.0)
        assert m.position(0, 1000.0) == p0

    def test_placement_outside_region_rejected(self, small_region):
        with pytest.raises(ValueError):
            StaticMobility(small_region, {0: Point(1e6, 0)})

    def test_uniform_positions_deterministic(self, small_region):
        a = uniform_random_positions([0, 1], small_region, seed=7)
        b = uniform_random_positions([0, 1], small_region, seed=7)
        assert a == b

    def test_uniform_positions_differ_across_seeds(self, small_region):
        a = uniform_random_positions([0, 1], small_region, seed=7)
        b = uniform_random_positions([0, 1], small_region, seed=8)
        assert a != b

    def test_negative_time_rejected(self, small_region):
        m = StaticMobility.uniform([0], small_region, seed=1)
        with pytest.raises(ValueError):
            m.position(0, -1.0)

    def test_duplicate_node_ids_rejected(self, small_region):
        with pytest.raises(ValueError):
            RandomWaypointMobility([1, 1], small_region, seed=0)


class TestRandomWaypoint:
    def test_deterministic_per_seed(self, small_region):
        a = RandomWaypointMobility([0, 1], small_region, seed=3)
        b = RandomWaypointMobility([0, 1], small_region, seed=3)
        for t in (0.0, 10.0, 123.4, 500.0):
            assert a.position(0, t) == b.position(0, t)
            assert a.position(1, t) == b.position(1, t)

    def test_stays_inside_region(self, small_region):
        m = RandomWaypointMobility([0], small_region, seed=5)
        for t in range(0, 2000, 13):
            assert small_region.contains(m.position(0, float(t)))

    def test_respects_speed_limit(self, small_region):
        max_speed = 20.0
        m = RandomWaypointMobility(
            [0], small_region, seed=5, max_speed=max_speed
        )
        dt = 0.5
        prev = m.position(0, 0.0)
        for step in range(1, 200):
            cur = m.position(0, step * dt)
            assert prev.distance_to(cur) <= max_speed * dt + 1e-6
            prev = cur

    def test_non_monotone_queries_allowed(self, small_region):
        m = RandomWaypointMobility([0], small_region, seed=5)
        late = m.position(0, 100.0)
        early = m.position(0, 1.0)
        again = m.position(0, 100.0)
        assert late == again
        assert early != late or early == late  # both queries valid

    def test_pause_time_freezes_node_at_waypoints(self, small_region):
        m = RandomWaypointMobility(
            [0], small_region, seed=5, min_speed=5.0, max_speed=5.0,
            pause_time=10.0,
        )
        legs = m.waypoints_until(0, 500.0)
        pauses = [
            leg for leg in legs
            if leg.p_start == leg.p_end and leg.t_end > leg.t_start
        ]
        assert pauses, "expected pause legs"
        for pause in pauses:
            assert pause.t_end - pause.t_start == pytest.approx(10.0)

    def test_zero_min_speed_floored(self, small_region):
        m = RandomWaypointMobility([0], small_region, seed=5, min_speed=0.0)
        assert m.min_speed >= RandomWaypointMobility.SPEED_FLOOR

    def test_invalid_speeds_rejected(self, small_region):
        with pytest.raises(ValueError):
            RandomWaypointMobility([0], small_region, seed=1, max_speed=0.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(
                [0], small_region, seed=1, min_speed=30.0, max_speed=20.0
            )
        with pytest.raises(ValueError):
            RandomWaypointMobility(
                [0], small_region, seed=1, pause_time=-1.0
            )

    def test_unknown_node_rejected(self, small_region):
        m = RandomWaypointMobility([0], small_region, seed=5)
        with pytest.raises(KeyError):
            m.position(99, 1.0)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.0, max_value=5000.0))
    def test_any_query_time_inside_region(self, t):
        region = Region(500.0, 200.0)
        m = RandomWaypointMobility([0, 1, 2], region, seed=11)
        for node in (0, 1, 2):
            assert region.contains(m.position(node, t))

    def test_nodes_actually_move(self, small_region):
        m = RandomWaypointMobility([0], small_region, seed=5)
        p0 = m.position(0, 0.0)
        p1 = m.position(0, 60.0)
        assert p0.distance_to(p1) > 0


class TestRandomWalk:
    def test_deterministic(self, small_region):
        a = RandomWalkMobility([0], small_region, seed=2)
        b = RandomWalkMobility([0], small_region, seed=2)
        for t in (0.0, 50.0, 333.3):
            assert a.position(0, t) == b.position(0, t)

    def test_stays_inside_region(self, small_region):
        m = RandomWalkMobility([0, 1], small_region, seed=2)
        for t in range(0, 1000, 7):
            for node in (0, 1):
                assert small_region.contains(m.position(node, float(t)))

    def test_invalid_parameters(self, small_region):
        with pytest.raises(ValueError):
            RandomWalkMobility([0], small_region, seed=1, min_speed=0.0)
        with pytest.raises(ValueError):
            RandomWalkMobility([0], small_region, seed=1, epoch=0.0)

    def test_positions_progress_over_time(self, small_region):
        m = RandomWalkMobility([0], small_region, seed=2)
        assert m.position(0, 0.0) != m.position(0, 100.0)
