"""Tests for mobility models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.primitives import Point
from repro.mobility.base import Region
from repro.mobility.gauss_markov import GaussMarkovMobility
from repro.mobility.manhattan import ManhattanGridMobility
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.rpgm import ReferencePointGroupMobility
from repro.mobility.static import StaticMobility, uniform_random_positions

#: Sampling grid used by the containment/determinism checks below.
QUERY_TIMES = [0.0, 0.3, 7.7, 50.0, 123.4, 500.0, 1999.5, 3800.0]


class TestRegion:
    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            Region(0.0, 100.0)
        with pytest.raises(ValueError):
            Region(100.0, -1.0)

    def test_area(self):
        assert Region(1500.0, 300.0).area == 450_000.0

    def test_contains(self):
        r = Region(10.0, 10.0)
        assert r.contains(Point(5, 5))
        assert r.contains(Point(0, 0))
        assert not r.contains(Point(11, 5))

    def test_clamp(self):
        r = Region(10.0, 10.0)
        assert r.clamp(Point(-5, 15)) == Point(0, 10)


class TestStatic:
    def test_positions_never_change(self, small_region):
        m = StaticMobility.uniform([0, 1, 2], small_region, seed=1)
        p0 = m.position(0, 0.0)
        assert m.position(0, 1000.0) == p0

    def test_placement_outside_region_rejected(self, small_region):
        with pytest.raises(ValueError):
            StaticMobility(small_region, {0: Point(1e6, 0)})

    def test_uniform_positions_deterministic(self, small_region):
        a = uniform_random_positions([0, 1], small_region, seed=7)
        b = uniform_random_positions([0, 1], small_region, seed=7)
        assert a == b

    def test_uniform_positions_differ_across_seeds(self, small_region):
        a = uniform_random_positions([0, 1], small_region, seed=7)
        b = uniform_random_positions([0, 1], small_region, seed=8)
        assert a != b

    def test_negative_time_rejected(self, small_region):
        m = StaticMobility.uniform([0], small_region, seed=1)
        with pytest.raises(ValueError):
            m.position(0, -1.0)

    def test_duplicate_node_ids_rejected(self, small_region):
        with pytest.raises(ValueError):
            RandomWaypointMobility([1, 1], small_region, seed=0)


class TestRandomWaypoint:
    def test_deterministic_per_seed(self, small_region):
        a = RandomWaypointMobility([0, 1], small_region, seed=3)
        b = RandomWaypointMobility([0, 1], small_region, seed=3)
        for t in (0.0, 10.0, 123.4, 500.0):
            assert a.position(0, t) == b.position(0, t)
            assert a.position(1, t) == b.position(1, t)

    def test_stays_inside_region(self, small_region):
        m = RandomWaypointMobility([0], small_region, seed=5)
        for t in range(0, 2000, 13):
            assert small_region.contains(m.position(0, float(t)))

    def test_respects_speed_limit(self, small_region):
        max_speed = 20.0
        m = RandomWaypointMobility(
            [0], small_region, seed=5, max_speed=max_speed
        )
        dt = 0.5
        prev = m.position(0, 0.0)
        for step in range(1, 200):
            cur = m.position(0, step * dt)
            assert prev.distance_to(cur) <= max_speed * dt + 1e-6
            prev = cur

    def test_non_monotone_queries_allowed(self, small_region):
        m = RandomWaypointMobility([0], small_region, seed=5)
        late = m.position(0, 100.0)
        early = m.position(0, 1.0)
        again = m.position(0, 100.0)
        assert late == again
        assert early != late or early == late  # both queries valid

    def test_pause_time_freezes_node_at_waypoints(self, small_region):
        m = RandomWaypointMobility(
            [0], small_region, seed=5, min_speed=5.0, max_speed=5.0,
            pause_time=10.0,
        )
        legs = m.waypoints_until(0, 500.0)
        pauses = [
            leg for leg in legs
            if leg.p_start == leg.p_end and leg.t_end > leg.t_start
        ]
        assert pauses, "expected pause legs"
        for pause in pauses:
            assert pause.t_end - pause.t_start == pytest.approx(10.0)

    def test_zero_min_speed_floored(self, small_region):
        m = RandomWaypointMobility([0], small_region, seed=5, min_speed=0.0)
        assert m.min_speed >= RandomWaypointMobility.SPEED_FLOOR

    def test_invalid_speeds_rejected(self, small_region):
        with pytest.raises(ValueError):
            RandomWaypointMobility([0], small_region, seed=1, max_speed=0.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(
                [0], small_region, seed=1, min_speed=30.0, max_speed=20.0
            )
        with pytest.raises(ValueError):
            RandomWaypointMobility(
                [0], small_region, seed=1, pause_time=-1.0
            )

    def test_unknown_node_rejected(self, small_region):
        m = RandomWaypointMobility([0], small_region, seed=5)
        with pytest.raises(KeyError):
            m.position(99, 1.0)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.0, max_value=5000.0))
    def test_any_query_time_inside_region(self, t):
        region = Region(500.0, 200.0)
        m = RandomWaypointMobility([0, 1, 2], region, seed=11)
        for node in (0, 1, 2):
            assert region.contains(m.position(node, t))

    def test_nodes_actually_move(self, small_region):
        m = RandomWaypointMobility([0], small_region, seed=5)
        p0 = m.position(0, 0.0)
        p1 = m.position(0, 60.0)
        assert p0.distance_to(p1) > 0


class TestRandomWalk:
    def test_deterministic(self, small_region):
        a = RandomWalkMobility([0], small_region, seed=2)
        b = RandomWalkMobility([0], small_region, seed=2)
        for t in (0.0, 50.0, 333.3):
            assert a.position(0, t) == b.position(0, t)

    def test_stays_inside_region(self, small_region):
        m = RandomWalkMobility([0, 1], small_region, seed=2)
        for t in range(0, 1000, 7):
            for node in (0, 1):
                assert small_region.contains(m.position(node, float(t)))

    def test_invalid_parameters(self, small_region):
        with pytest.raises(ValueError):
            RandomWalkMobility([0], small_region, seed=1, min_speed=0.0)
        with pytest.raises(ValueError):
            RandomWalkMobility([0], small_region, seed=1, epoch=0.0)

    def test_positions_progress_over_time(self, small_region):
        m = RandomWalkMobility([0], small_region, seed=2)
        assert m.position(0, 0.0) != m.position(0, 100.0)


#: (model class, extra kwargs) for the shared behavioural checks every
#: generative model must satisfy: seed determinism, region containment
#: at arbitrary query times, seed sensitivity, and actual movement.
GENERATIVE_MODELS = [
    (RandomWaypointMobility, {}),
    (RandomWalkMobility, {}),
    (GaussMarkovMobility, {}),
    (GaussMarkovMobility, {"alpha": 0.0}),
    (GaussMarkovMobility, {"alpha": 1.0}),
    (ManhattanGridMobility, {}),
    (ManhattanGridMobility, {"blocks_x": 1, "blocks_y": 1}),
    (ReferencePointGroupMobility, {}),
    (ReferencePointGroupMobility, {"n_groups": 1}),
]


@pytest.mark.parametrize("model_cls,kwargs", GENERATIVE_MODELS)
class TestGenerativeModelContract:
    def test_same_seed_identical_trajectories(
        self, small_region, model_cls, kwargs
    ):
        a = model_cls([0, 1, 2], small_region, seed=11, **kwargs)
        b = model_cls([0, 1, 2], small_region, seed=11, **kwargs)
        for t in QUERY_TIMES:
            for node in (0, 1, 2):
                assert a.position(node, t) == b.position(node, t)

    def test_non_monotone_queries_are_stable(
        self, small_region, model_cls, kwargs
    ):
        # Querying late then early then late again must not perturb the
        # lazily materialized trajectory.
        a = model_cls([0], small_region, seed=4, **kwargs)
        late = a.position(0, 400.0)
        a.position(0, 3.0)
        assert a.position(0, 400.0) == late

    def test_stays_inside_region(self, small_region, model_cls, kwargs):
        m = model_cls([0, 1], small_region, seed=13, **kwargs)
        for t in QUERY_TIMES:
            for node in (0, 1):
                assert small_region.contains(m.position(node, t)), (
                    f"{model_cls.__name__} left the region at t={t}"
                )

    def test_different_seeds_differ(self, small_region, model_cls, kwargs):
        a = model_cls([0], small_region, seed=1, **kwargs)
        b = model_cls([0], small_region, seed=2, **kwargs)
        assert any(
            a.position(0, t) != b.position(0, t) for t in QUERY_TIMES
        )

    def test_nodes_move(self, small_region, model_cls, kwargs):
        m = model_cls([0], small_region, seed=5, **kwargs)
        p0 = m.position(0, 0.0)
        assert any(m.position(0, t) != p0 for t in (60.0, 120.0, 300.0))

    def test_negative_time_rejected(self, small_region, model_cls, kwargs):
        m = model_cls([0], small_region, seed=5, **kwargs)
        with pytest.raises(ValueError):
            m.position(0, -0.1)

    def test_unknown_node_rejected(self, small_region, model_cls, kwargs):
        m = model_cls([0], small_region, seed=5, **kwargs)
        with pytest.raises(KeyError):
            m.position(99, 1.0)


class TestGaussMarkov:
    def test_double_bounce_keeps_heading_state_in_sync(self, small_region):
        """A step long enough to cross the region twice nets an even
        number of bounces: position returns to the start and the stored
        heading must NOT flip (mirror reflection has period 2*limit)."""
        import math

        from repro.geometry.primitives import Point
        from repro.mobility.legs import Leg

        m = GaussMarkovMobility(
            [0], small_region, seed=1, alpha=1.0, update_interval=1.0,
            mean_speed=10.0, max_speed=2.0 * small_region.height,
        )
        start = Point(150.0, 100.0)
        m._legs[0] = [Leg(0.0, 0.0, start, start)]
        m._leg_ends[0] = [0.0]
        m._direction[0] = math.pi / 2.0  # straight up
        m._speed[0] = 2.0 * small_region.height  # two full crossings
        p = m.position(0, 1.0)
        assert p.x == pytest.approx(start.x)
        assert p.y == pytest.approx(start.y)  # even bounces: back home
        # alpha=1 means the heading only changes via bounce flips; an
        # even bounce count must leave it pointing up, not down.
        assert math.sin(m._direction[0]) == pytest.approx(1.0)

    def test_invalid_parameters(self, small_region):
        with pytest.raises(ValueError):
            GaussMarkovMobility([0], small_region, seed=1, alpha=1.5)
        with pytest.raises(ValueError):
            GaussMarkovMobility([0], small_region, seed=1, mean_speed=0.0)
        with pytest.raises(ValueError):
            GaussMarkovMobility([0], small_region, seed=1, speed_std=-1.0)
        with pytest.raises(ValueError):
            GaussMarkovMobility(
                [0], small_region, seed=1, update_interval=0.0
            )
        with pytest.raises(ValueError):
            GaussMarkovMobility(
                [0], small_region, seed=1, mean_speed=10.0, max_speed=5.0
            )
        with pytest.raises(ValueError):
            GaussMarkovMobility(
                [0], small_region, seed=1, edge_margin=1000.0
            )

    def test_speed_respects_cap(self, small_region):
        m = GaussMarkovMobility(
            [0], small_region, seed=3, mean_speed=10.0, max_speed=12.0
        )
        dt = m.update_interval
        prev = m.position(0, 0.0)
        for step in range(1, 200):
            cur = m.position(0, step * dt)
            # One leg per interval; reflection can only shorten the
            # displacement, never lengthen it.
            assert prev.distance_to(cur) <= 12.0 * dt + 1e-6
            prev = cur

    def test_high_alpha_is_smoother_than_low_alpha(self, small_region):
        """Memory must show up as straighter paths (smaller turns)."""
        import math

        def mean_turn(alpha):
            m = GaussMarkovMobility(
                [0], small_region, seed=9, alpha=alpha, update_interval=1.0
            )
            pts = [m.position(0, float(t)) for t in range(0, 200)]
            headings = [
                math.atan2(b.y - a.y, b.x - a.x)
                for a, b in zip(pts, pts[1:])
                if a != b
            ]
            turns = [
                abs((b - a + math.pi) % (2.0 * math.pi) - math.pi)
                for a, b in zip(headings, headings[1:])
            ]
            return sum(turns) / len(turns)

        assert mean_turn(0.95) < mean_turn(0.05)


class TestManhattan:
    def test_invalid_parameters(self, small_region):
        with pytest.raises(ValueError):
            ManhattanGridMobility([0], small_region, seed=1, blocks_x=0)
        with pytest.raises(ValueError):
            ManhattanGridMobility([0], small_region, seed=1, min_speed=0.0)
        with pytest.raises(ValueError):
            ManhattanGridMobility([0], small_region, seed=1, turn_prob=0.6)

    def test_positions_stay_on_streets(self, small_region):
        blocks_x, blocks_y = 3, 3
        m = ManhattanGridMobility(
            [0, 1], small_region, seed=7, blocks_x=blocks_x, blocks_y=blocks_y
        )
        step_x = small_region.width / blocks_x
        step_y = small_region.height / blocks_y

        def on_grid_line(value, step):
            ratio = value / step
            return abs(ratio - round(ratio)) < 1e-9

        for t in [x * 1.7 for x in range(200)]:
            for node in (0, 1):
                p = m.position(node, t)
                assert on_grid_line(p.x, step_x) or on_grid_line(p.y, step_y)

    def test_speed_bounds_hold_along_streets(self, small_region):
        m = ManhattanGridMobility(
            [0], small_region, seed=3, min_speed=5.0, max_speed=10.0
        )
        legs = m.waypoints_until(0, 300.0)
        for leg in legs:
            duration = leg.t_end - leg.t_start
            if duration <= 0:
                continue
            speed = leg.p_start.distance_to(leg.p_end) / duration
            assert 5.0 - 1e-9 <= speed <= 10.0 + 1e-9


class TestReferencePointGroup:
    def test_invalid_parameters(self, small_region):
        with pytest.raises(ValueError):
            ReferencePointGroupMobility(
                [0, 1], small_region, seed=1, n_groups=3
            )
        with pytest.raises(ValueError):
            ReferencePointGroupMobility(
                [0, 1], small_region, seed=1, n_groups=0
            )
        with pytest.raises(ValueError):
            ReferencePointGroupMobility(
                [0, 1], small_region, seed=1, group_radius=0.0
            )
        with pytest.raises(ValueError):
            ReferencePointGroupMobility(
                [0, 1], small_region, seed=1, member_speed=0.0
            )

    def test_members_partition_into_contiguous_groups(self, small_region):
        m = ReferencePointGroupMobility(
            list(range(10)), small_region, seed=2, n_groups=2
        )
        groups = [m.group_of(node) for node in range(10)]
        assert groups == sorted(groups)
        assert set(groups) == {0, 1}

    def test_members_track_their_reference_point(self, small_region):
        radius = 30.0
        m = ReferencePointGroupMobility(
            list(range(6)), small_region, seed=8, n_groups=2,
            group_radius=radius,
        )
        for t in (0.0, 40.0, 333.0, 900.0):
            for node in range(6):
                center = m.center_position(m.group_of(node), t)
                p = m.position(node, t)
                # Clamping at the border can only pull a member closer
                # to the region, never push it away from its centre
                # by more than the offset disk radius.
                assert p.distance_to(center) <= radius + 1e-6

    def test_groups_move_independently(self, small_region):
        m = ReferencePointGroupMobility(
            list(range(4)), small_region, seed=5, n_groups=2
        )
        deltas = [
            m.center_position(0, t).distance_to(m.center_position(1, t))
            for t in (0.0, 100.0, 300.0, 600.0)
        ]
        assert len({round(d, 6) for d in deltas}) > 1
