"""Tests for ns-2 trace import/export and replay."""

import pytest

from repro.geometry.primitives import Point
from repro.mobility.base import Region
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.traces import (
    NodeTrace,
    TraceMobility,
    load_ns2_trace,
    save_ns2_trace,
)


class TestNodeTrace:
    def test_static_trace(self):
        trace = NodeTrace(initial=Point(10, 20))
        legs = trace.to_legs()
        assert legs[-1].p_end == Point(10, 20)

    def test_single_setdest(self):
        trace = NodeTrace(
            initial=Point(0, 0), commands=[(0.0, Point(30, 40), 5.0)]
        )
        legs = trace.to_legs()
        # 50 m at 5 m/s = 10 s of travel.
        assert legs[-1].t_end == pytest.approx(10.0)
        assert legs[-1].p_end == Point(30, 40)

    def test_midcourse_interruption(self):
        # Second command arrives before the first finishes; node turns
        # from its current position.
        trace = NodeTrace(
            initial=Point(0, 0),
            commands=[
                (0.0, Point(100, 0), 10.0),  # would finish at t=10
                (5.0, Point(50, 50), 10.0),  # interrupts at (50, 0)
            ],
        )
        legs = trace.to_legs()
        interrupted = legs[1]
        assert interrupted.t_end == pytest.approx(5.0)
        assert interrupted.position_at(5.0).x == pytest.approx(50.0)

    def test_zero_speed_command_ignored(self):
        trace = NodeTrace(
            initial=Point(0, 0), commands=[(1.0, Point(10, 10), 0.0)]
        )
        legs = trace.to_legs()
        assert all(leg.p_end == Point(0, 0) for leg in legs)


class TestTraceMobility:
    def test_replay_positions(self):
        region = Region(200.0, 200.0)
        traces = {
            0: NodeTrace(
                initial=Point(0, 0), commands=[(0.0, Point(100, 0), 10.0)]
            )
        }
        m = TraceMobility(region, traces)
        assert m.position(0, 0.0) == Point(0, 0)
        assert m.position(0, 5.0).x == pytest.approx(50.0)
        assert m.position(0, 10.0).x == pytest.approx(100.0)
        assert m.position(0, 99.0).x == pytest.approx(100.0)  # stays

    def test_unknown_node(self):
        m = TraceMobility(Region(10, 10), {0: NodeTrace(Point(1, 1))})
        with pytest.raises(KeyError):
            m.position(5, 0.0)


class TestRoundTrip:
    @pytest.mark.parametrize("model_name", [
        "random_waypoint", "gauss_markov", "manhattan", "random_walk",
    ])
    def test_round_trip_across_horizon(self, tmp_path, model_name):
        """save_ns2_trace -> load_ns2_trace reproduces every leg-based
        model's positions within tolerance across the whole horizon."""
        from repro.mobility.registry import as_mobility_config, build_mobility

        region = Region(600.0, 300.0)
        horizon = 180.0
        original = build_mobility(
            as_mobility_config(model_name), list(range(5)), region, seed=23
        )
        path = tmp_path / f"{model_name}.tcl"
        save_ns2_trace(original, path, until=horizon)
        replayed = load_ns2_trace(path, region)
        t = 0.0
        while t <= horizon:
            for node in range(5):
                a = original.position(node, t)
                b = replayed.position(node, t)
                assert a.distance_to(b) < 0.5, (
                    f"{model_name} node {node} diverged at t={t}: {a} vs {b}"
                )
            t += 7.3

    def test_round_trip_is_deterministic(self, tmp_path):
        region = Region(600.0, 300.0)
        original = RandomWaypointMobility([0, 1], region, seed=4)
        path = tmp_path / "det.tcl"
        save_ns2_trace(original, path, until=90.0)
        first = load_ns2_trace(path, region)
        second = load_ns2_trace(path, region)
        for t in (0.0, 12.5, 89.9, 200.0):
            for node in (0, 1):
                assert first.position(node, t) == second.position(node, t)

    def test_export_import_preserves_positions(self, tmp_path):
        region = Region(500.0, 300.0)
        original = RandomWaypointMobility(
            [0, 1, 2], region, seed=42, max_speed=15.0
        )
        path = tmp_path / "scenario.tcl"
        save_ns2_trace(original, path, until=120.0)

        replayed = load_ns2_trace(path, region)
        for node in (0, 1, 2):
            for t in (0.0, 30.0, 60.0, 119.0):
                a = original.position(node, t)
                b = replayed.position(node, t)
                assert a.distance_to(b) < 0.5, (
                    f"node {node} diverged at t={t}: {a} vs {b}"
                )

    def test_exported_file_is_ns2_format(self, tmp_path):
        region = Region(500.0, 300.0)
        m = RandomWaypointMobility([0], region, seed=1)
        path = tmp_path / "scenario.tcl"
        save_ns2_trace(m, path, until=60.0)
        text = path.read_text()
        assert "$node_(0) set X_" in text
        assert "setdest" in text

    def test_import_rejects_incomplete_initial_position(self, tmp_path):
        path = tmp_path / "bad.tcl"
        path.write_text("$node_(0) set X_ 10.0\n")
        with pytest.raises(ValueError):
            load_ns2_trace(path, Region(100, 100))

    def test_import_rejects_orphan_setdest(self, tmp_path):
        path = tmp_path / "bad.tcl"
        path.write_text('$ns_ at 1.0 "$node_(3) setdest 1.0 2.0 3.0"\n')
        with pytest.raises(ValueError):
            load_ns2_trace(path, Region(100, 100))

    def test_trace_outside_region_rejected(self, tmp_path):
        # A setdest file generated for a different field size must fail
        # loudly instead of silently breaking the containment invariant.
        path = tmp_path / "oversized.tcl"
        path.write_text(
            "$node_(0) set X_ 5000.0\n"
            "$node_(0) set Y_ 900.0\n"
        )
        with pytest.raises(ValueError, match="leaves the"):
            load_ns2_trace(path, Region(1500, 300))
        in_region = tmp_path / "wander.tcl"
        in_region.write_text(
            "$node_(0) set X_ 10.0\n"
            "$node_(0) set Y_ 10.0\n"
            '$ns_ at 1.0 "$node_(0) setdest 400.0 200.0 5.0"\n'
        )
        with pytest.raises(ValueError, match="leaves the"):
            load_ns2_trace(in_region, Region(100, 100))  # dest outside
        load_ns2_trace(in_region, Region(500, 300))  # fits: loads fine

    def test_import_ignores_comments_and_z(self, tmp_path):
        path = tmp_path / "ok.tcl"
        path.write_text(
            "# a comment\n"
            "$node_(0) set X_ 10.0\n"
            "$node_(0) set Y_ 20.0\n"
            "$node_(0) set Z_ 0.0\n"
        )
        m = load_ns2_trace(path, Region(100, 100))
        assert m.position(0, 5.0) == Point(10, 20)


class TestTraceFileDigest:
    def test_digest_is_content_based(self, tmp_path):
        from repro.mobility.traces import trace_file_digest

        a = tmp_path / "a.ns2"
        a.write_text("$node_(0) set X_ 10.0\n$node_(0) set Y_ 10.0\n")
        first = trace_file_digest(a)
        assert first == trace_file_digest(a)

        b = tmp_path / "b.ns2"
        b.write_bytes(a.read_bytes())
        assert trace_file_digest(b) == first  # same content, any path

        a.write_text("$node_(0) set X_ 99.0\n$node_(0) set Y_ 10.0\n")
        assert trace_file_digest(a) != first  # in-place edit changes it

    def test_digest_missing_file_raises(self, tmp_path):
        from repro.mobility.traces import trace_file_digest

        with pytest.raises(OSError):
            trace_file_digest(tmp_path / "gone.ns2")
