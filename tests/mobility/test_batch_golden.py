"""Batch-mobility golden tests: positions_array equals position.

The vectorized engine evaluates whole populations with
``MobilityModel.positions_array``; the scalar ``position`` path is the
golden reference.  For every registered model the batch result must be
**bit-identical** (``==`` on float64, no tolerance) at randomized query
times, including out-of-order queries that stress the leg-selection
cache, because engine equivalence of whole simulations is proven by
composing this property with the UDG differential tests.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.mobility.base import Region
from repro.mobility.registry import (
    as_mobility_config,
    available_models,
    build_mobility,
)
from repro.mobility.static import StaticMobility
from repro.mobility.traces import save_ns2_trace

#: Models buildable with no extra parameters.
GENERATIVE_MODELS = [
    "gauss_markov",
    "manhattan",
    "random_walk",
    "random_waypoint",
    "rpgm",
    "static",
]


def build_model(name: str, tmp_path, n: int = 12, seed: int = 31):
    region = Region(600.0, 300.0)
    node_ids = list(range(n))
    if name == "trace":
        # Export a real trajectory set and replay it — covers finite
        # trajectories whose nodes park on their final waypoint.
        source = build_mobility(
            as_mobility_config("random_waypoint"), node_ids, region, seed
        )
        path = tmp_path / "golden.tcl"
        save_ns2_trace(source, path, until=120.0)
        return build_mobility(
            as_mobility_config({"model": "trace", "params": {"path": str(path)}}),
            node_ids,
            region,
            seed,
        )
    return build_mobility(as_mobility_config(name), node_ids, region, seed)


def assert_batch_matches_scalar(model, times) -> None:
    """Batch rows must equal the scalar path bit-for-bit at each time."""
    for t in times:
        batch = model.positions_array(t)
        assert batch.shape == (len(model.node_ids), 2)
        assert batch.dtype == np.float64
        for row, node in enumerate(model.node_ids):
            point = model.position(node, t)
            assert batch[row, 0] == point.x, (
                f"node {node} x differs at t={t}"
            )
            assert batch[row, 1] == point.y, (
                f"node {node} y differs at t={t}"
            )


class TestBatchGolden:
    def test_every_registered_model_is_covered(self):
        assert set(GENERATIVE_MODELS) | {"trace"} == set(available_models())

    @pytest.mark.parametrize("name", GENERATIVE_MODELS + ["trace"])
    def test_batch_equals_scalar_at_randomized_times(self, name, tmp_path):
        model = build_model(name, tmp_path)
        rng = random.Random(hash(name) & 0xFFFF)
        times = sorted(rng.uniform(0.0, 400.0) for _ in range(12))
        assert_batch_matches_scalar(model, [0.0] + times)

    @pytest.mark.parametrize("name", GENERATIVE_MODELS + ["trace"])
    def test_batch_equals_scalar_under_shuffled_queries(self, name, tmp_path):
        """Leg-cache staleness: repeated/backwards times select correctly."""
        model = build_model(name, tmp_path)
        rng = random.Random(len(name))
        times = [rng.uniform(0.0, 300.0) for _ in range(10)]
        times += [times[0], times[3]]  # exact repeats hit the cache
        rng.shuffle(times)
        assert_batch_matches_scalar(model, times)

    @pytest.mark.parametrize("name", GENERATIVE_MODELS)
    def test_batch_on_fresh_model_matches_scalar_on_twin(self, name, tmp_path):
        """Batch evaluation must not perturb RNG draw order.

        Two identically seeded models — one queried only through
        ``positions_array``, the twin only through ``position`` — must
        agree, proving the batch path extends trajectories with the
        same per-node draws as the scalar path.
        """
        batch_model = build_model(name, tmp_path)
        scalar_model = build_model(name, tmp_path)
        for t in (0.0, 12.5, 12.5, 47.0, 150.0):
            batch = batch_model.positions_array(t)
            for row, node in enumerate(batch_model.node_ids):
                point = scalar_model.position(node, t)
                assert batch[row, 0] == point.x
                assert batch[row, 1] == point.y

    def test_trace_replay_past_horizon_parks_nodes(self, tmp_path):
        """Finite trajectories hold their last point in batch too."""
        # Legs started before the export horizon run to their own end,
        # so query far past the longest possible leg.
        model = build_model("trace", tmp_path)
        final = model.positions_array(10_000.0)
        later = model.positions_array(50_000.0)
        assert np.array_equal(final, later)
        assert_batch_matches_scalar(model, [10_000.0, 50_000.0])

    def test_static_batch_is_cached_and_write_protected(self):
        region = Region(100.0, 100.0)
        model = StaticMobility.uniform([0, 1, 2], region, seed=3)
        first = model.positions_array(0.0)
        second = model.positions_array(50.0)
        assert first is second
        with pytest.raises(ValueError):
            first[0, 0] = 1.0

    def test_empty_population(self):
        region = Region(100.0, 100.0)
        model = StaticMobility(region, {})
        batch = model.positions_array(0.0)
        assert batch.shape == (0, 2)

    def test_negative_time_rejected(self, tmp_path):
        model = build_model("random_waypoint", tmp_path)
        with pytest.raises(ValueError):
            model.positions_array(-1.0)
