"""CI perf-regression gate and perf-trajectory dashboard.

``bench_campaign.py`` writes one ``BENCH_campaign.json`` datapoint per
CI run; until now those datapoints were write-only — uploaded and never
compared.  This script closes the loop:

- **Gate** (``--baseline``): diff the current datapoint against the
  baseline restored from the most recent ``main`` run.  The gating
  metric is *cold tasks per second* (the campaign engine's headline
  throughput): warn above ``--warn`` (default 15%) slowdown, exit
  nonzero above ``--fail`` (default 30%).  The full before/after table
  goes to stdout and (with ``--summary``) the GitHub step summary.
  A missing baseline skips the gate with a note — the first run on a
  branch has nothing to compare against.
- **Trajectory** (``--trajectory`` + ``--append``): accumulate the
  current datapoint (stamped with ``--commit``) into an append-only
  ``BENCH_trajectory.jsonl`` carried in the same CI cache, and render
  a markdown trend table of the last ``--window`` commits (cold wall,
  tasks/s, stream-resume, orchestrated wall) — the perf dashboard the
  ROADMAP asks for.

Timing noise note: shared CI runners jitter by a few percent run to
run; the 15/30 thresholds are set so only a real engine regression
(or a badly overloaded runner) trips them.

Run::

    python benchmarks/compare_bench.py --current BENCH_campaign.json \\
        --baseline .perf-baseline/BENCH_campaign.json \\
        --trajectory .perf-baseline/BENCH_trajectory.jsonl --append \\
        --commit "$GITHUB_SHA" --summary "$GITHUB_STEP_SUMMARY"
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
from pathlib import Path

#: (field, label, lower-is-better) — the comparison table rows.
METRICS = (
    ("cold_wall_s", "cold wall (s)", True),
    ("tasks_per_s", "cold tasks/s", False),
    ("stream_resume_s", "stream resume (s)", True),
    ("cache_resume_s", "cache resume (s)", True),
    ("orchestrated_wall_s", "orchestrated wall (s)", True),
    ("distributed_wall_s", "distributed wall (s)", True),
    ("profiled_wall_s", "profiled wall (s)", True),
    ("profiler_overhead_pct", "profiler overhead (%)", True),
    ("vectorized_wall_s", "vectorized wall (s)", True),
    ("rebuild_speedup_x", "rebuild speedup (x)", False),
)

#: The gating metric: cold-campaign throughput.
GATE_METRIC = "tasks_per_s"

#: Trend-table columns (field, short label).
TREND_FIELDS = (
    ("cold_wall_s", "cold (s)"),
    ("tasks_per_s", "tasks/s"),
    ("stream_resume_s", "stream-resume (s)"),
    ("orchestrated_wall_s", "orchestrated (s)"),
    ("distributed_wall_s", "distributed (s)"),
    ("profiled_wall_s", "profiled (s)"),
    ("vectorized_wall_s", "vectorized (s)"),
)


def load_report(path: Path) -> dict | None:
    """A bench datapoint, or ``None`` when absent/unreadable."""
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    if not isinstance(report, dict):
        return None
    return report


def fmt_delta(
    base: float, current: float, lower_is_better: bool,
    warn: float = 0.15,
) -> str:
    """``+3.2%`` style delta, marked when it regresses past ``warn``.

    ``warn`` is the gate's ``--warn`` threshold, so the table's ⚠
    markers agree with the gate verdict when the default is overridden.
    """
    if not base:
        return "n/a"
    change = (current - base) / base
    worse = change > 0 if lower_is_better else change < 0
    marker = " ⚠" if worse and abs(change) >= warn else ""
    return f"{change:+.1%}{marker}"


def compare_table(
    baseline: dict, current: dict, warn: float = 0.15
) -> str:
    """Markdown before/after table over every tracked metric."""
    lines = [
        "| metric | baseline | current | change |",
        "|---|---:|---:|---:|",
    ]
    for field, label, lower_is_better in METRICS:
        base, cur = baseline.get(field), current.get(field)
        if not isinstance(base, (int, float)) or not isinstance(
            cur, (int, float)
        ):
            continue
        lines.append(
            f"| {label} | {base:.3f} | {cur:.3f} "
            f"| {fmt_delta(base, cur, lower_is_better, warn)} |"
        )
    return "\n".join(lines)


def gate_slowdown(baseline: dict, current: dict) -> float | None:
    """Fractional throughput loss on the gate metric (negative = faster)."""
    base, cur = baseline.get(GATE_METRIC), current.get(GATE_METRIC)
    if (
        not isinstance(base, (int, float))
        or not isinstance(cur, (int, float))
        or not base
    ):
        return None
    return (base - cur) / base


def append_trajectory(
    path: Path, current: dict, commit: str | None
) -> None:
    """Append the current datapoint as one trajectory JSONL line."""
    entry = {
        "commit": commit or "unknown",
        "date": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%d %H:%M"
        ),
        **{
            field: current.get(field)
            for field, _, _ in METRICS
            if isinstance(current.get(field), (int, float))
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def load_trajectory(path: Path) -> list[dict]:
    """All decodable trajectory entries, oldest first."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return []
    entries = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if isinstance(entry, dict):
            entries.append(entry)
    return entries


def trend_table(entries: list[dict], window: int) -> str:
    """Markdown trend table over the last ``window`` entries.

    Re-runs of one commit keep only the latest datapoint, so a
    restarted CI job does not duplicate rows.
    """
    latest: dict[str, dict] = {}
    order: list[str] = []
    for entry in entries:
        commit = str(entry.get("commit", "unknown"))
        if commit not in latest:
            order.append(commit)
        else:
            order.remove(commit)
            order.append(commit)
        latest[commit] = entry
    recent = [latest[commit] for commit in order[-window:]]
    if not recent:
        return "(no trajectory datapoints yet)"
    header = "| commit | date | " + " | ".join(
        label for _, label in TREND_FIELDS
    ) + " |"
    lines = [header, "|---|---|" + "---:|" * len(TREND_FIELDS)]
    for entry in recent:
        cells = []
        for field, _ in TREND_FIELDS:
            value = entry.get(field)
            cells.append(
                f"{value:.3f}" if isinstance(value, (int, float)) else "–"
            )
        commit = str(entry.get("commit", "unknown"))[:10]
        lines.append(
            f"| `{commit}` | {entry.get('date', '–')} | "
            + " | ".join(cells) + " |"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", required=True, help="this run's BENCH_campaign.json"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline BENCH_campaign.json (absent file = gate skipped)",
    )
    parser.add_argument(
        "--warn", type=float, default=0.15,
        help="warn at this fractional tasks/s slowdown (default: 0.15)",
    )
    parser.add_argument(
        "--fail", type=float, default=0.30,
        help="fail at this fractional tasks/s slowdown (default: 0.30)",
    )
    parser.add_argument(
        "--trajectory", default=None,
        help="BENCH_trajectory.jsonl accumulating per-commit datapoints",
    )
    parser.add_argument(
        "--append", action="store_true",
        help="append the current datapoint to --trajectory before "
        "rendering the trend",
    )
    parser.add_argument(
        "--commit", default=None, help="commit SHA stamping the datapoint"
    )
    parser.add_argument(
        "--window", type=int, default=20,
        help="trend-table length in commits (default: 20)",
    )
    parser.add_argument(
        "--summary", default=None,
        help="also append the markdown to this file "
        "(CI: $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)
    if not 0 < args.warn <= args.fail:
        parser.error("need 0 < --warn <= --fail")

    current = load_report(Path(args.current))
    if current is None:
        print(f"error: cannot read current datapoint {args.current}",
              file=sys.stderr)
        return 2

    sections: list[str] = ["## Campaign perf gate", ""]
    exit_code = 0
    baseline = (
        load_report(Path(args.baseline)) if args.baseline is not None
        else None
    )
    if baseline is None:
        sections.append(
            "No baseline datapoint to compare against (first run on "
            "this branch, or the cache expired); gate skipped."
        )
    else:
        sections.append(compare_table(baseline, current, args.warn))
        sections.append("")
        slowdown = gate_slowdown(baseline, current)
        if slowdown is None:
            sections.append(
                f"Baseline lacks `{GATE_METRIC}`; gate skipped."
            )
        elif slowdown >= args.fail:
            sections.append(
                f"**FAIL**: cold throughput fell {slowdown:.1%} vs "
                f"baseline (fail threshold {args.fail:.0%})."
            )
            exit_code = 1
        elif slowdown >= args.warn:
            sections.append(
                f"**WARNING**: cold throughput fell {slowdown:.1%} vs "
                f"baseline (warn threshold {args.warn:.0%}, fail at "
                f"{args.fail:.0%})."
            )
        else:
            sections.append(
                f"OK: cold throughput change {-slowdown:+.1%} vs "
                f"baseline (warn at -{args.warn:.0%})."
            )

    if args.trajectory is not None:
        trajectory_path = Path(args.trajectory)
        if args.append:
            append_trajectory(trajectory_path, current, args.commit)
        entries = load_trajectory(trajectory_path)
        sections += [
            "",
            f"## Perf trajectory (last {args.window} commits)",
            "",
            trend_table(entries, args.window),
        ]

    markdown = "\n".join(sections) + "\n"
    print(markdown)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write(markdown)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
