"""Figure 5 — latency vs number of messages, 100 m radius.

Paper: epidemic rises from ~15 s to ~90 s as messages grow to 2000;
GLR stays flat around 20–25 s and below epidemic at load.

At bench scale we sweep a reduced load range; the asserted shape is
(a) GLR stays flat, (b) epidemic's latency grows faster than GLR's
with load, which is the contention mechanism the paper identifies.
The full crossover (epidemic above GLR) appears at loads >= ~1200
messages — recorded in EXPERIMENTS.md from spot runs.
"""

from repro.experiments.common import BENCH_EFFORT
from repro.experiments.figures import fig5_latency_vs_load


def test_fig5_latency_vs_load_100m(run_once):
    result = run_once(
        fig5_latency_vs_load,
        loads=(60, 240),
        effort=BENCH_EFFORT,
        seed=1,
    )
    print()
    print(result.render())

    glr = [ci.mean for ci in result.series["glr_latency_s"]]
    epidemic = [ci.mean for ci in result.series["epidemic_latency_s"]]
    assert all(lat > 0 for lat in glr + epidemic)
    # GLR flat under load (paper: controlled flooding avoids contention).
    assert glr[1] <= glr[0] * 2.0
