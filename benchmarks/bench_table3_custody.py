"""Table 3 — delivery ratio with vs without custody transfer.

Paper (890 messages, 50 m, 1200 s): 84.7%±1 without custody transfer vs
97.9%±1 with it.  The shape: custody transfer recovers deliveries lost
to collisions and link breakage, at similar or better latency for the
messages that do arrive.
"""

from repro.experiments.common import BENCH_EFFORT
from repro.experiments.tables import table3_custody


def _mean(cell: str) -> float:
    return float(cell.split("±")[0])


def test_table3_custody(run_once):
    result = run_once(table3_custody, effort=BENCH_EFFORT, seed=1)
    print()
    print(result.render())

    without = next(r for r in result.rows if r[0] == "without")
    with_ct = next(r for r in result.rows if r[0] == "with")
    # Custody transfer must improve the delivery ratio.
    assert _mean(with_ct[1]) > _mean(without[1])
    assert _mean(with_ct[1]) > 0.5
