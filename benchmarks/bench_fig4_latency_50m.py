"""Figure 4 — latency vs number of messages, 50 m radius.

Paper: epidemic latency rises steeply with load (contention) up to
~170 s at ~2000 messages; GLR stays below it throughout.

Reproduction status (see EXPERIMENTS.md): our epidemic stays at its
mobility-mixing floor at 50 m because the abstract MAC has far less
overhead than NS-2's 802.11+IMEP stack at this node density, so the
crossover does NOT appear at 50 m — it appears at 100 m (Figure 5).
What this bench asserts is the part of the figure that does reproduce:
GLR's latency stays bounded (flat-ish) as load grows, i.e. controlled
flooding does not degrade with the number of messages in transit.
"""

from repro.experiments.common import BENCH_EFFORT
from repro.experiments.figures import fig4_latency_vs_load


def test_fig4_latency_vs_load_50m(run_once):
    result = run_once(
        fig4_latency_vs_load,
        loads=(60, 180),
        effort=BENCH_EFFORT,
        seed=1,
    )
    print()
    print(result.render())

    glr = [ci.mean for ci in result.series["glr_latency_s"]]
    epidemic = [ci.mean for ci in result.series["epidemic_latency_s"]]
    assert all(lat > 0 for lat in glr + epidemic)
    # GLR latency growth under 3x load stays bounded (< 2x).
    assert glr[1] <= glr[0] * 2.0
