"""Figure 3 — GLR delivery latency vs route-check interval.

Paper: 1980 messages at 100 m; latency 18–25 s across intervals
0.6–1.6 s, generally lower for more frequent checks (traded against
more control traffic).  Bench scale uses fewer messages and a shorter
horizon; the shape to reproduce is the mild latency increase with the
interval and the control-traffic decrease.
"""

from repro.experiments.common import BENCH_EFFORT
from repro.experiments.figures import fig3_check_interval


def test_fig3_check_interval(run_once):
    result = run_once(
        fig3_check_interval,
        intervals=(0.6, 1.0, 1.6),
        effort=BENCH_EFFORT,
        seed=1,
    )
    print()
    print(result.render())

    latencies = [ci.mean for ci in result.series["glr_latency_s"]]
    assert all(lat > 0 for lat in latencies)
    # Latency at the fastest check must not exceed the slowest check's
    # by more than noise (paper: more frequent checks reduce latency).
    assert latencies[0] <= latencies[-1] * 1.6
