"""Figure 1 — topology connectivity at 250 m vs 100 m radius.

Paper: two example topologies of 50 nodes in a 1000 m square; at 250 m
"the networks are either connected or only a few nodes are
disconnected", at 100 m "the possibility of network connection is
almost impossible".
"""

from repro.analysis.topology_art import render_topology
from repro.experiments.figures import fig1_topology
from repro.graphs.udg import unit_disk_graph
from repro.mobility.base import Region
from repro.mobility.static import uniform_random_positions


def test_fig1_topology(run_once):
    result = run_once(fig1_topology, runs=10, seed=1)
    print()
    print(result.render())
    # Draw one sample topology per radius, as the paper's figure does.
    positions = uniform_random_positions(
        list(range(50)), Region(1000.0, 1000.0), seed=1
    )
    for radius, label in ((250.0, "(a)"), (100.0, "(b)")):
        graph = unit_disk_graph(positions, radius)
        print()
        print(
            render_topology(
                graph, title=f"Figure 1 {label}: radius {radius:.0f} m"
            )
        )

    comp_250, comp_100 = result.series["components"]
    frac_250, frac_100 = result.series["reachable_pair_fraction"]
    # Paper shape: 250 m ~ connected, 100 m shattered.
    assert comp_250.mean < 5.0
    assert comp_100.mean > 10.0
    assert frac_250.mean > 0.8
    assert frac_100.mean < 0.3
