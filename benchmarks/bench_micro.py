"""Microbenchmarks for the substrates on the simulator's hot paths.

These are conventional pytest-benchmark timings (multiple rounds): the
Delaunay construction, LDTG build, RWP position queries and the event
engine dominate the simulation profile, so regressions here translate
directly into slower experiment harness runs.
"""

import random

from repro.geometry.delaunay import delaunay_triangulation
from repro.geometry.primitives import Point
from repro.graphs.ldt import local_delaunay_graph
from repro.graphs.udg import unit_disk_graph
from repro.mobility.base import Region
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.sim.engine import Simulator


def _points(n, seed, side=1000.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, side), rng.uniform(0, side)) for _ in range(n)]


def test_delaunay_50_points(benchmark):
    pts = _points(50, 1)
    tri = benchmark(delaunay_triangulation, pts)
    assert len(tri.triangles) > 0


def test_unit_disk_graph_50_nodes(benchmark):
    positions = {i: p for i, p in enumerate(_points(50, 2))}
    graph = benchmark(unit_disk_graph, positions, 200.0)
    assert graph.edge_count() > 0


def test_unit_disk_rebuild_vs_naive_double_discovery(benchmark):
    """Beacon-tick rebuild at paper density (50 nodes, 1500x300, 100 m).

    The rebuild discovers each edge once via forward-cell pair
    iteration (GridIndex.iter_pairs_within); the naive per-node query
    loop it replaced found every edge twice.  Reference numbers on the
    dev container: ~195 us naive vs ~91 us deduped (2.1x) at 100 m,
    2.3x at 250 m.  This runs every beacon interval of every simulated
    second, the hottest loop in the simulator.
    """
    rng = random.Random(7)
    positions = {
        i: Point(rng.uniform(0, 1500.0), rng.uniform(0, 300.0))
        for i in range(50)
    }

    def naive_double_discovery(positions, radius):
        # The pre-dedupe implementation, kept as the comparison baseline.
        from repro.graphs.udg import GridIndex, SpatialGraph

        graph = SpatialGraph()
        index = GridIndex(cell_size=radius)
        for node, p in positions.items():
            graph.add_node(node, p)
            index.insert(node, p)
        for node, p in positions.items():
            for other, _ in index.neighbors_within(p, radius):
                if other != node:
                    graph.adjacency[node].add(other)
        return graph

    deduped = benchmark(unit_disk_graph, positions, 100.0)
    assert deduped.edges() == naive_double_discovery(positions, 100.0).edges()


def _paper_density_mobility(n=800, seed=11):
    """An RWP population at the paper's node density, scaled up to n.

    The paper's Table 1 places 50 nodes on 1500 m x 300 m; scaling both
    region sides by sqrt(n/50) keeps nodes-per-square-metre fixed, so
    the per-tick edge work grows the way a larger paper scenario would.
    """
    import math

    scale = math.sqrt(n / 50)
    region = Region(1500.0 * scale, 300.0 * scale)
    return RandomWaypointMobility(list(range(n)), region, seed=seed)


def test_reference_rebuild_paper_density(benchmark):
    """Beacon rebuild (mobility + UDG) on the pure-Python engine.

    800 nodes at paper density, 100 m range — the reference half of the
    engine comparison; ``test_vectorized_rebuild_paper_density`` times
    the identical work on the numpy core.  Each call advances the clock
    one beacon interval, as the simulator does.
    """
    mobility = _paper_density_mobility()
    clock = {"t": 0.0}

    def rebuild():
        clock["t"] += 1.0
        graph = unit_disk_graph(mobility.positions(clock["t"]), 100.0)
        return graph.edge_count()

    assert benchmark(rebuild) > 0


def test_vectorized_rebuild_paper_density(benchmark):
    """Beacon rebuild (batch mobility + array UDG) on the numpy engine.

    The vectorized counterpart of
    ``test_reference_rebuild_paper_density``: same population, same
    radius, same advancing clock.  The ratio between the two is the
    engine speedup; ``bench_campaign.py`` gates it at paper density.
    """
    from repro.sim.arraystate import ArrayState

    mobility = _paper_density_mobility()
    clock = {"t": 0.0}

    def rebuild():
        clock["t"] += 1.0
        state = ArrayState.from_mobility(mobility, clock["t"])
        return state.unit_disk_snapshot(100.0).edge_count()

    assert benchmark(rebuild) > 0


def test_engines_rebuild_identical_graphs():
    """The two rebuild benchmarks above time *the same* computation."""
    from repro.sim.arraystate import ArrayState

    reference_mobility = _paper_density_mobility(n=200)
    vectorized_mobility = _paper_density_mobility(n=200)
    for t in (1.0, 2.0, 3.0):
        reference = unit_disk_graph(reference_mobility.positions(t), 100.0)
        state = ArrayState.from_mobility(vectorized_mobility, t)
        snapshot = state.unit_disk_snapshot(100.0)
        assert snapshot.positions == reference.positions
        assert snapshot.edges() == reference.edges()


def test_ldtg_50_nodes(benchmark):
    positions = {i: p for i, p in enumerate(_points(50, 3))}
    graph = benchmark(local_delaunay_graph, positions, 200.0, 2)
    assert graph.edge_count() > 0


def test_rwp_position_queries(benchmark):
    region = Region(1500.0, 300.0)
    mobility = RandomWaypointMobility(list(range(50)), region, seed=4)

    def query_sweep():
        total = 0.0
        for t in range(0, 1000, 10):
            total += mobility.position(t % 50, float(t)).x
        return total

    assert benchmark(query_sweep) > 0


def test_event_engine_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000
