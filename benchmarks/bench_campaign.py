"""Campaign-engine perf trajectory: one fixed-seed JSON datapoint.

Unlike the pytest-benchmark drivers (which time the *simulator*), this
script times the *campaign machinery* end to end on a fixed-seed probe
sweep and writes a machine-readable ``BENCH_campaign.json``:

- cold wall time and tasks/sec for a streamed, cached campaign run;
- stream-resume time (rerun against the finished stream — every task
  skipped from the stream alone, the primary resume medium);
- cache-resume time (fresh stream, warm result cache — the opt-in
  second layer);
- orchestrated wall time for the same spec fanned out over shard
  worker subprocesses (supervision + merge overhead included);
- distributed wall time for the same spec over two simulated hosts
  (``ObjectStoreTransport`` roots — the full push/mirror transport
  path, minus the network);
- a profiled cold run (``REPRO_PROFILE_PHASES=1``): measures the
  phase profiler's overhead against the plain cold run and reports
  where the probe sweep's time goes, phase by phase;
- a vectorized cold run (the same spec pinned to the numpy engine),
  asserted to render the identical aggregate — engines are
  bit-identical — plus a beacon-rebuild comparison at paper density
  (800 nodes, 100 m) that **gates** the vectorized core at >= 3x the
  reference rebuild.

CI runs this per push and uploads the JSON as an artifact, so the
engine's overheads become a tracked trajectory instead of anecdotes.
The spec is fixed-seed: metrics are identical run to run, only the
timings move.

Run:
    PYTHONPATH=src python benchmarks/bench_campaign.py --out BENCH_campaign.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.orchestrator import orchestrate_campaign
from repro.experiments.scenarios import Scenario
from repro.experiments.stream import load_stream
from repro.telemetry.profile import PHASES, PROFILE_ENV, aggregate_phase_profiles


def probe_spec() -> CampaignSpec:
    """The fixed-seed probe sweep: 2 radii x 2 protocols x 2 replicates."""
    return CampaignSpec(
        name="bench-campaign",
        base=Scenario(
            name="bench-campaign",
            n_nodes=16,
            active_nodes=8,
            message_count=8,
            sim_time=120.0,
            seed=1,
        ),
        grid=(("radius", (80.0, 140.0)),),
        protocols=("glr", "epidemic"),
        replicates=2,
    )


def timed(fn) -> tuple[object, float]:
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


#: The vectorized rebuild must beat the reference by this factor at
#: paper density; below it the numpy core has regressed.
REBUILD_SPEEDUP_FLOOR = 3.0


def rebuild_speedup(
    n: int = 800, radius: float = 100.0, ticks: int = 30, repeats: int = 3
) -> dict:
    """Beacon-rebuild wall time, reference vs vectorized engine.

    Times the engine-differentiated hot path — evaluate mobility, build
    the beacon UDG snapshot, count its edges — over ``ticks`` advancing
    beacon intervals at the paper's node density scaled to ``n`` nodes
    (region sides grow by sqrt(n/50) from 1500 x 300).  Best of
    ``repeats`` per engine, so a scheduler hiccup cannot fail the gate.

    The two loops are checked to produce identical edge counts every
    tick: the speedup is for *the same* computation.
    """
    from repro.graphs.udg import unit_disk_graph
    from repro.mobility.base import Region
    from repro.mobility.random_waypoint import RandomWaypointMobility
    from repro.sim.arraystate import ArrayState

    scale = math.sqrt(n / 50)
    region = Region(1500.0 * scale, 300.0 * scale)
    times = [float(t) for t in range(1, ticks + 1)]

    def reference_pass():
        mobility = RandomWaypointMobility(list(range(n)), region, seed=11)
        return [
            unit_disk_graph(mobility.positions(t), radius).edge_count()
            for t in times
        ]

    def vectorized_pass():
        mobility = RandomWaypointMobility(list(range(n)), region, seed=11)
        return [
            ArrayState.from_mobility(mobility, t)
            .unit_disk_snapshot(radius)
            .edge_count()
            for t in times
        ]

    reference_s, vectorized_s = math.inf, math.inf
    reference_edges = vectorized_edges = None
    for _ in range(repeats):
        reference_edges, elapsed = timed(reference_pass)
        reference_s = min(reference_s, elapsed)
        vectorized_edges, elapsed = timed(vectorized_pass)
        vectorized_s = min(vectorized_s, elapsed)
    assert vectorized_edges == reference_edges, "engines diverged"
    return {
        "rebuild_reference_s": round(reference_s, 4),
        "rebuild_vectorized_s": round(vectorized_s, 4),
        "rebuild_speedup_x": round(reference_s / vectorized_s, 2),
    }


def run(workers: int, shards: int) -> dict:
    spec = probe_spec()
    total = spec.total_tasks()
    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as tmp:
        workdir = Path(tmp)
        stream = workdir / "cold.jsonl"
        cache = workdir / "cache"

        cold, cold_s = timed(
            lambda: run_campaign(
                spec, workers=workers, stream_path=stream, cache_dir=cache
            )
        )
        stream_resumed, stream_resume_s = timed(
            lambda: run_campaign(spec, workers=workers, stream_path=stream)
        )
        cache_resumed, cache_resume_s = timed(
            lambda: run_campaign(
                spec,
                workers=workers,
                stream_path=workdir / "warm.jsonl",
                cache_dir=cache,
            )
        )
        orchestrated, orchestrated_s = timed(
            lambda: orchestrate_campaign(
                spec,
                shards=shards,
                workers_per_shard=workers,
                run_dir=workdir / "orchestrated",
                poll_interval=0.05,
            )
        )

        distributed, distributed_s = timed(
            lambda: orchestrate_campaign(
                spec,
                run_dir=workdir / "distributed",
                hosts=[
                    f"store:{workdir}/host-{index}"
                    for index in range(shards)
                ],
                workers_per_shard=workers,
                poll_interval=0.05,
            )
        )

        # The same cold sweep with the phase profiler on: its wall time
        # against cold_s is the measured profiler overhead, and its
        # stream carries the phase_profile blocks we aggregate below.
        profiled_stream = workdir / "profiled.jsonl"
        saved = os.environ.get(PROFILE_ENV)
        os.environ[PROFILE_ENV] = "1"
        try:
            profiled, profiled_s = timed(
                lambda: run_campaign(
                    spec, workers=workers, stream_path=profiled_stream
                )
            )
        finally:
            if saved is None:
                del os.environ[PROFILE_ENV]
            else:
                os.environ[PROFILE_ENV] = saved
        cells = aggregate_phase_profiles(
            load_stream(profiled_stream, quarantine=False).records
        )
        phase_totals = {
            phase: round(
                sum(cell.get(phase, 0.0) for cell in cells.values()), 4
            )
            for phase in PHASES
        }

        # The same cold sweep pinned to the vectorized numpy engine.
        # Engines are bit-identical, so its aggregate must render the
        # same; its wall time tracks the end-to-end payoff of the
        # vectorized core on the probe sweep.
        vectorized_spec = dataclasses.replace(
            spec, base=spec.base.but(engine="vectorized")
        )
        vectorized, vectorized_s = timed(
            lambda: run_campaign(
                vectorized_spec,
                workers=workers,
                stream_path=workdir / "vectorized.jsonl",
            )
        )

        assert stream_resumed.stream_hits == total
        assert cache_resumed.cache_hits == total
        for other in (
            stream_resumed,
            cache_resumed,
            orchestrated.result,
            distributed.result,
            profiled,
            vectorized,
        ):
            assert other.render() == cold.render(), "fixed seed drifted"

    rebuild = rebuild_speedup()
    assert rebuild["rebuild_speedup_x"] >= REBUILD_SPEEDUP_FLOOR, (
        f"vectorized rebuild regressed: {rebuild['rebuild_speedup_x']}x "
        f"< {REBUILD_SPEEDUP_FLOOR}x at paper density"
    )

    return {
        "benchmark": "campaign-engine",
        "spec": {
            "name": spec.name,
            "tasks": total,
            "workers": workers,
            "shards": shards,
        },
        "cold_wall_s": round(cold_s, 4),
        "tasks_per_s": round(total / cold_s, 3),
        "stream_resume_s": round(stream_resume_s, 4),
        "cache_resume_s": round(cache_resume_s, 4),
        "orchestrated_wall_s": round(orchestrated_s, 4),
        "distributed_wall_s": round(distributed_s, 4),
        "profiled_wall_s": round(profiled_s, 4),
        "profiler_overhead_pct": round(
            (profiled_s - cold_s) / cold_s * 100, 2
        ),
        "vectorized_wall_s": round(vectorized_s, 4),
        **rebuild,
        "phase_totals_s": phase_totals,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None, help="write the JSON datapoint here"
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--shards", type=int, default=2)
    args = parser.parse_args(argv)

    report = run(args.workers, args.shards)
    if args.out:
        Path(args.out).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    print(
        f"campaign bench ({report['spec']['tasks']} tasks, "
        f"{args.workers} workers):"
    )
    print(
        f"  cold          {report['cold_wall_s']:8.3f} s "
        f"({report['tasks_per_s']} tasks/s)"
    )
    print(f"  stream resume {report['stream_resume_s']:8.3f} s")
    print(f"  cache resume  {report['cache_resume_s']:8.3f} s")
    print(
        f"  orchestrated  {report['orchestrated_wall_s']:8.3f} s "
        f"({args.shards} shard workers)"
    )
    print(
        f"  distributed   {report['distributed_wall_s']:8.3f} s "
        f"({args.shards} simulated hosts)"
    )
    print(
        f"  profiled      {report['profiled_wall_s']:8.3f} s "
        f"({report['profiler_overhead_pct']:+.1f}% profiler overhead)"
    )
    print(f"  vectorized    {report['vectorized_wall_s']:8.3f} s")
    print(
        f"  rebuild       {report['rebuild_reference_s']:.3f} s reference "
        f"vs {report['rebuild_vectorized_s']:.3f} s vectorized "
        f"({report['rebuild_speedup_x']}x, floor "
        f"{REBUILD_SPEEDUP_FLOOR}x)"
    )
    breakdown = ", ".join(
        f"{phase}={seconds:.3f}s"
        for phase, seconds in report["phase_totals_s"].items()
    )
    print(f"  phases        {breakdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
