"""Figure 6 — latency vs transmission radius, fixed message count.

Paper: latency falls sharply as the radius grows for both protocols
(~170 s at 50 m to ~15 s at 250 m for epidemic; GLR below it).  The
bench asserts the monotone decrease for both protocols and that at
dense radii (where Algorithm 1 picks a single copy and the network is
connected) GLR is competitive with epidemic.
"""

from repro.experiments.common import BENCH_EFFORT
from repro.experiments.figures import fig6_latency_vs_radius


def test_fig6_latency_vs_radius(run_once):
    result = run_once(
        fig6_latency_vs_radius,
        radii=(50.0, 150.0, 250.0),
        effort=BENCH_EFFORT,
        seed=1,
    )
    print()
    print(result.render())

    glr = [ci.mean for ci in result.series["glr_latency_s"]]
    epidemic = [ci.mean for ci in result.series["epidemic_latency_s"]]
    # Latency decreases with radius (allowing 10% noise) for both.
    assert glr[-1] < glr[0]
    assert epidemic[-1] <= epidemic[0] * 1.1
    # At 250 m the network is connected: both deliver fast.
    assert glr[-1] < 30.0
