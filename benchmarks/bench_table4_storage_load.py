"""Table 4 — GLR peak storage vs message count (50 m, 3 copies).

Paper: max peak grows 39 -> 69 and average peak 21 -> 44 as messages
grow 400 -> 1980.  Shape: both peaks grow with load, and stay far
below the epidemic requirement (~ every message in transit).
"""

from repro.experiments.common import BENCH_EFFORT
from repro.experiments.tables import table4_storage_vs_load


def _mean(cell: str) -> float:
    return float(cell.split("±")[0])


def test_table4_storage_vs_load(run_once):
    loads = (60, 180)
    result = run_once(
        table4_storage_vs_load, loads=loads, effort=BENCH_EFFORT, seed=1
    )
    print()
    print(result.render())

    max_peaks = [_mean(r[1]) for r in result.rows]
    avg_peaks = [_mean(r[2]) for r in result.rows]
    # Storage grows with load...
    assert max_peaks[1] > max_peaks[0]
    assert avg_peaks[1] > avg_peaks[0]
    # ...but stays well below "all messages in transit" (epidemic's
    # requirement, = the load itself).
    assert max_peaks[1] < loads[1]
