"""Table 6 — hop counts, GLR vs epidemic, across radii.

Paper (1980 messages): GLR hops grow 3.4 -> 17.3 as radius shrinks
250 m -> 50 m; epidemic hops stay ~3.2–4.9 throughout, and GLR's count
exceeds epidemic's at every radius (GLR re-forwards whenever relative
positions change; epidemic messages ride their carriers).
"""

from repro.experiments.common import BENCH_EFFORT
from repro.experiments.tables import table6_hops


def _mean(cell: str) -> float:
    return float(cell.split("±")[0])


def test_table6_hops(run_once):
    result = run_once(
        table6_hops,
        radii=(250.0, 100.0, 50.0),
        effort=BENCH_EFFORT,
        seed=1,
    )
    print()
    print(result.render())

    rows = {r[0]: r for r in result.rows}
    # GLR hops exceed epidemic's at sparse radii.
    assert _mean(rows["100"][1]) > _mean(rows["100"][2])
    assert _mean(rows["50"][1]) > _mean(rows["50"][2])
    # GLR hops grow as the radius shrinks.
    assert _mean(rows["50"][1]) > _mean(rows["250"][1])
    # Epidemic hop counts stay small everywhere (paper: 3.2-4.9).
    for radius in ("250", "100", "50"):
        assert _mean(rows[radius][2]) < 10.0
