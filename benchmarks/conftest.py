"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures at
``BENCH_EFFORT`` scale (reduced runs/messages/horizon so the suite
finishes in minutes) and prints the paper-comparable rendering, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
harness.  EXPERIMENTS.md records paper-vs-measured for each artifact.

Benches run their driver exactly once inside the benchmark wrapper
(rounds=1): the quantity of interest is the experiment output, and each
"iteration" is itself an average over replicate simulations.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a driver exactly once under pytest-benchmark and return it."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
