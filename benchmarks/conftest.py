"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures at
``BENCH_EFFORT`` scale (reduced runs/messages/horizon so the suite
finishes in minutes) and prints the paper-comparable rendering, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction
harness.  EXPERIMENTS.md records paper-vs-measured for each artifact.

Benches run their driver exactly once inside the benchmark wrapper
(rounds=1): the quantity of interest is the experiment output, and each
"iteration" is itself an average over replicate simulations.

Every simulation driver routes its replicate loop through the campaign
engine (:mod:`repro.experiments.campaign`); set ``REPRO_BENCH_WORKERS=N``
to fan the replicates out over N processes (results are bit-identical
to the default serial run, only the wall clock changes).
"""

from __future__ import annotations

import inspect

import pytest

from repro.experiments.common import bench_workers


@pytest.fixture
def run_once(benchmark):
    """Run a driver exactly once under pytest-benchmark and return it.

    Drivers that accept a ``workers`` argument get the
    ``REPRO_BENCH_WORKERS`` setting injected unless the bench pinned
    one explicitly.
    """

    def _run(fn, *args, **kwargs):
        if (
            "workers" not in kwargs
            and "workers" in inspect.signature(fn).parameters
        ):
            kwargs["workers"] = bench_workers()
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
