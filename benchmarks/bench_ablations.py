"""Ablation benches for GLR's design choices (DESIGN.md Section 5).

Beyond the paper's own tables: each bench isolates one mechanism and
prints a comparison table; assertions pin the direction each mechanism
is supposed to act in.
"""

from repro.experiments.ablations import (
    ablation_copies,
    ablation_custody_timeout,
    ablation_face_routing,
    ablation_protocols,
    ablation_spanner,
)
from repro.experiments.common import BENCH_EFFORT


def _mean(cell: str) -> float:
    return float(cell.split("±")[0])


def test_ablation_copies(run_once):
    result = run_once(
        ablation_copies, copy_counts=(1, 3), effort=BENCH_EFFORT, seed=1
    )
    print()
    print(result.render())
    rows = {r[0]: r for r in result.rows}
    # More copies cost more storage...
    assert _mean(rows["3"][3]) >= _mean(rows["1"][3])
    # ...and Algorithm 1 matches the sparse choice (3 copies at 50 m).
    assert _mean(rows["algorithm-1"][3]) == _mean(rows["3"][3])


def test_ablation_spanner(run_once):
    result = run_once(ablation_spanner, effort=BENCH_EFFORT, seed=1)
    print()
    print(result.render())
    rows = {r[0]: r for r in result.rows}
    # Both spanners must deliver; the LDTG must not lose messages
    # relative to routing on the full UDG neighbour set.
    assert _mean(rows["ldt"][1]) >= _mean(rows["udg"][1]) - 0.1


def test_ablation_face_routing(run_once):
    result = run_once(ablation_face_routing, effort=BENCH_EFFORT, seed=1)
    print()
    print(result.render())
    rows = {r[0]: r for r in result.rows}
    assert _mean(rows["on"][1]) >= _mean(rows["off"][1]) - 0.1


def test_ablation_custody_timeout(run_once):
    result = run_once(
        ablation_custody_timeout,
        timeouts=(2.0, 10.0),
        effort=BENCH_EFFORT,
        seed=1,
    )
    print()
    print(result.render())
    for row in result.rows:
        assert _mean(row[1]) > 0.3  # all timeouts must still deliver


def test_ablation_protocols(run_once):
    result = run_once(ablation_protocols, effort=BENCH_EFFORT, seed=1)
    print()
    print(result.render())
    rows = {r[0]: r for r in result.rows}
    # Epidemic and GLR must beat direct delivery on delivery ratio at
    # this horizon; GLR's storage must undercut epidemic's.
    assert _mean(rows["glr"][1]) >= _mean(rows["direct"][1])
    assert _mean(rows["epidemic"][1]) >= _mean(rows["direct"][1])
    assert _mean(rows["glr"][4]) < _mean(rows["epidemic"][4])
