"""Table 5 — GLR peak storage vs radius (fixed message count).

Paper (1980 messages): max peak falls 69 -> 6.9 and average peak
43.6 -> 1.76 as the radius grows 50 m -> 250 m ("the longer the radius,
the smaller is the storage requirement").
"""

from repro.experiments.common import BENCH_EFFORT
from repro.experiments.tables import table5_storage_vs_radius


def _mean(cell: str) -> float:
    return float(cell.split("±")[0])


def test_table5_storage_vs_radius(run_once):
    result = run_once(
        table5_storage_vs_radius,
        radii=(250.0, 100.0, 50.0),
        effort=BENCH_EFFORT,
        seed=1,
    )
    print()
    print(result.render())

    rows = {r[0]: r for r in result.rows}
    # Storage requirement strictly larger at 50 m than at 250 m, for
    # both the max and the average peak.
    assert _mean(rows["50"][1]) > _mean(rows["250"][1])
    assert _mean(rows["50"][2]) > _mean(rows["250"][2])
    # Dense connected network: storage requirement tiny.
    assert _mean(rows["250"][2]) < 10.0
