"""Figure 7 — delivery ratio vs per-node storage limit (50 m).

Paper (1980 messages): epidemic's delivery ratio collapses once
per-node storage drops below ~200 messages, while GLR holds 100% even
at 100 messages/node.  At bench scale (fewer messages) the same shape
appears at proportionally smaller limits: GLR's controlled flooding
keeps per-node occupancy far below the number of messages in transit,
so it tolerates much smaller stores than epidemic.
"""

from repro.experiments.common import BENCH_EFFORT, Effort
from repro.experiments.figures import fig7_delivery_vs_storage

EFFORT = Effort(
    runs=BENCH_EFFORT.runs,
    sim_time=max(BENCH_EFFORT.sim_time, 480.0),
    message_count=160,
)


def test_fig7_delivery_vs_storage(run_once):
    result = run_once(
        fig7_delivery_vs_storage,
        limits=(10, 40, 160),
        effort=EFFORT,
        seed=1,
    )
    print()
    print(result.render())

    glr = [ci.mean for ci in result.series["glr_delivery_ratio"]]
    epidemic = [ci.mean for ci in result.series["epidemic_delivery_ratio"]]
    # Epidemic recovers with storage; at the tightest limit it must
    # have lost deliveries relative to its unconstrained ratio.
    assert epidemic[0] < epidemic[-1]
    # The paper's storage claim, stated scale-honestly: squeezing the
    # store must cost GLR proportionally less than epidemic, because
    # GLR's occupancy is a small fraction of the messages in transit.
    # (At the short bench horizon GLR's *unconstrained* 50 m ratio is
    # itself below 1.0, so retention — ratio at the tight limit over
    # ratio unconstrained — is the comparable quantity.)
    glr_retention = glr[0] / max(glr[-1], 1e-9)
    epidemic_retention = epidemic[0] / max(epidemic[-1], 1e-9)
    assert glr_retention > epidemic_retention
