"""Table 2 — delivery under destination-location knowledge situations.

Paper (3800 s horizon): oracle 1-copy fastest (120 s), then
3-copies-source-knows (150 s), then 1-copy-source-knows (156 s), then
3-copies-no-knowledge slowest (212 s, 99.9% delivery).  The shape to
reproduce is that ordering: more location knowledge and controlled
flooding both reduce latency; no knowledge is the worst row.
"""

from repro.experiments.common import BENCH_EFFORT, Effort
from repro.experiments.tables import table2_location

EFFORT = Effort(
    runs=BENCH_EFFORT.runs,
    sim_time=BENCH_EFFORT.sim_time,
    message_count=BENCH_EFFORT.message_count,
)


def _mean(cell: str) -> float:
    return float(cell.split("±")[0])


def test_table2_location(run_once):
    result = run_once(table2_location, effort=EFFORT, seed=1)
    print()
    print(result.render())

    rows = {((r[0]), r[1]): r for r in result.rows}
    oracle = rows[("1 copy", "all nodes know")]
    src3 = rows[("3 copies", "only source knows")]
    src1 = rows[("1 copy", "only source knows")]
    none3 = rows[("3 copies", "no nodes know")]

    # Oracle knowledge must beat no knowledge in latency, within the
    # noise floor of the 2-run bench effort (CIs at this scale overlap
    # heavily; the spot-effort ordering is recorded in EXPERIMENTS.md).
    assert _mean(oracle[3]) <= _mean(none3[3]) * 1.15
    # Oracle-1copy must beat source-1copy (same copy count, strictly
    # more knowledge) — the cleanest pairwise comparison in the table.
    assert _mean(oracle[3]) <= _mean(src1[3]) * 1.05
    # Controlled flooding: 3 copies at least as fast as 1 copy when
    # only the source knows the location (paper's central comparison).
    assert _mean(src3[3]) <= _mean(src1[3]) * 1.25
    # Delivery with knowledge is high.
    assert _mean(oracle[2]) > 0.9
