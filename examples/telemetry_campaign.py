"""Telemetry end to end: an orchestrated run narrating itself.

Demonstrates the observability fabric around the campaign engine:

1. run a chaos-injected orchestrated campaign (shard 0's first worker
   is SIGKILLed at launch) with the phase profiler on;
2. read back the run's merged ``events.jsonl`` — the structured,
   append-only supervision history the supervisor and every shard
   worker co-wrote — and validate it against the event schema;
3. query it the way ``repro campaign events --type requeue`` would,
   proving the injected fault and its recovery are durable records,
   not just scrollback;
4. aggregate the per-task ``phase_profile`` blocks from the merged
   metric stream into a per-cell phase breakdown (where does the wall
   time actually go: mobility, UDG rebuild, MAC, protocol, delivery?).

Run:
    python examples/telemetry_campaign.py
"""

import os
import tempfile
from pathlib import Path

from repro.experiments import CampaignSpec, Scenario
from repro.experiments.orchestrator import orchestrate_campaign
from repro.experiments.stream import load_stream
from repro.telemetry.events import (
    filter_events,
    load_events,
    render_event,
    unknown_event_types,
)
from repro.telemetry.profile import (
    PHASES,
    PROFILE_ENV,
    aggregate_phase_profiles,
)


def main() -> None:
    spec = CampaignSpec(
        name="telemetry",
        base=Scenario(
            name="telemetry",
            n_nodes=16,
            active_nodes=8,
            message_count=12,
            sim_time=120.0,
            seed=11,
        ),
        grid=(("radius", (90.0, 150.0)),),
        protocols=("glr", "epidemic"),
        replicates=2,
    )
    print(
        f"campaign: {spec.total_tasks()} tasks over 2 shard workers, "
        "profiler on, shard 0's first worker SIGKILLed at launch"
    )

    run_dir = Path(tempfile.mkdtemp(prefix="telemetry-campaign-"))
    os.environ[PROFILE_ENV] = "1"  # inherited by the shard workers
    try:
        outcome = orchestrate_campaign(
            spec,
            shards=2,
            workers_per_shard=2,
            run_dir=run_dir,
            poll_interval=0.1,
            chaos_kill_shard=0,
            chaos_kill_after=0,
        )
    finally:
        del os.environ[PROFILE_ENV]
    print(f"done: {outcome.requeues} requeue(s) survived -> {run_dir}")

    # The merged supervision history (what `repro campaign events`
    # renders).  Read-only paths never quarantine-repair.
    info = load_events(run_dir / "events.jsonl", quarantine=False)
    assert info.origin == "merged"
    assert unknown_event_types(info.records) == set()
    print(f"\nevent log: {len(info.records)} events")
    for record in info.records:
        print(f"  {render_event(record)}")

    # The injected fault is a durable, queryable record.
    requeues = filter_events(info.records, type="requeue")
    assert requeues, "the chaos kill should have forced a requeue"
    print(f"\nrequeue events: {len(requeues)} (the chaos kill, survived)")

    # Where did the time go?  Fold phase_profile blocks per cell.
    records = load_stream(
        run_dir / "campaign.jsonl", quarantine=False
    ).records
    cells = aggregate_phase_profiles(records)
    assert cells, "profiler was on: every record carries phase_profile"
    print("\nphase breakdown (exclusive seconds per cell):")
    header = "  " + "cell".ljust(34) + "tasks  " + "  ".join(
        phase.rjust(11) for phase in PHASES
    )
    print(header)
    for (scenario, protocol), cell in sorted(cells.items()):
        label = f"{scenario.split('/', 1)[1]}/{protocol}"
        row = "  ".join(
            f"{cell.get(phase, 0.0):11.3f}" for phase in PHASES
        )
        print(f"  {label:<34}{cell['tasks']:>5}  {row}")


if __name__ == "__main__":
    main()
