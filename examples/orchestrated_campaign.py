"""Orchestrated campaign: one call launches, supervises, and collects.

Demonstrates the in-repo shard scheduler end to end:

1. define a campaign (a radius x protocol sweep);
2. hand it to ``orchestrate_campaign``: the task set is partitioned by
   content key, one worker subprocess per shard runs its slice and
   streams per-task metrics, and the supervisor watches heartbeats and
   stream growth (on a cluster you would instead run
   ``repro campaign orchestrate --shards N --workers-per-shard M``);
3. inject a fault — the first worker of shard 0 is SIGKILLed at
   launch — and watch the orchestrator requeue the shard's remaining
   tasks onto a fresh worker (which stream-resumes, so nothing already
   recorded reruns);
4. take a read-only ``watch_view`` snapshot of the shard streams (what
   ``repro campaign watch`` re-renders live);
5. verify the merged, aggregated result is bit-identical to an
   unsharded in-process run of the same spec.

Run:
    python examples/orchestrated_campaign.py
"""

import tempfile
from pathlib import Path

from repro.experiments import CampaignSpec, Scenario, run_campaign
from repro.experiments.orchestrator import (
    orchestrate_campaign,
    render_watch,
    watch_view,
)

SHARDS = 2


def main() -> None:
    base = Scenario(
        name="orchestrated",
        n_nodes=16,
        active_nodes=8,
        message_count=12,
        sim_time=120.0,
        seed=11,
    )
    spec = CampaignSpec(
        name="orchestrated",
        base=base,
        grid=(("radius", (90.0, 150.0)),),
        protocols=("glr", "epidemic"),
        replicates=2,
    )
    print(
        f"campaign: {len(spec.scenarios())} scenarios x "
        f"{len(spec.protocols)} protocols x {spec.replicates} replicates "
        f"= {spec.total_tasks()} tasks over {SHARDS} shard workers"
    )

    run_dir = Path(tempfile.mkdtemp(prefix="orchestrated-campaign-"))
    outcome = orchestrate_campaign(
        spec,
        shards=SHARDS,
        workers_per_shard=2,
        run_dir=run_dir,
        poll_interval=0.1,
        on_event=lambda message: print(f"  orchestrator: {message}"),
        # Fault injection: SIGKILL shard 0's first worker at launch and
        # let supervision requeue its tasks onto a replacement.
        chaos_kill_shard=0,
        chaos_kill_after=0,
    )

    print()
    print("read-only snapshot of the shard streams (campaign watch):")
    print(render_watch(watch_view(sorted(run_dir.glob("shard*.jsonl")))))

    print()
    print(outcome.result.render())
    print(
        f"requeues survived: {outcome.requeues}; merged stream: "
        f"{outcome.merged_stream}"
    )

    reference = run_campaign(spec, workers=2)
    identical = outcome.result.render() == reference.render()
    print(f"orchestrated aggregate == unsharded aggregate: {identical}")
    if not identical:
        raise SystemExit("orchestrated equivalence violated")


if __name__ == "__main__":
    main()
