"""Distributed campaign: one supervisor, many hosts, one merged result.

Demonstrates the cross-machine orchestration fabric end to end,
entirely on the local machine:

1. define a campaign (a radius x protocol sweep);
2. stand up two *pseudo-hosts* — ``ObjectStoreTransport`` roots that
   exercise the full remote protocol (spec push, lease pushes, stream
   and heartbeat mirror pulls) with local directories standing in for
   the wire (on a real fleet you would pass ``user@host`` specs
   instead, which ride the same code path over ssh/scp);
3. hand both to ``orchestrate_campaign(hosts=[...])``: each host gets
   the spec and a lease assignment, runs its worker against *its own*
   root, and the supervisor mirrors every stream back into the run dir
   each tick — so watch, heartbeat stall detection, and merging all
   run on the mirrors unchanged;
4. inject a fault — host 0 is SIGKILLed at launch and its transport
   goes dark — and watch the supervisor declare the host lost, requeue
   its leases, and reclaim them onto the survivor;
5. grow the fleet mid-campaign: appending a host to the run dir's
   ``hosts.json`` registers a new slot and the work-stealing scheduler
   rebalances leases onto it;
6. verify the merged, aggregated result is bit-identical to an
   unsharded in-process run of the same spec.

Run:
    python examples/distributed_campaign.py
"""

import json
import tempfile
from pathlib import Path

from repro.experiments import CampaignSpec, Scenario, run_campaign
from repro.experiments.orchestrator import orchestrate_campaign


def main() -> None:
    base = Scenario(
        name="distributed",
        n_nodes=16,
        active_nodes=8,
        message_count=12,
        sim_time=120.0,
        seed=11,
    )
    spec = CampaignSpec(
        name="distributed",
        base=base,
        grid=(("radius", (90.0, 150.0)),),
        protocols=("glr", "epidemic"),
        replicates=2,
    )

    scratch = Path(tempfile.mkdtemp(prefix="distributed-campaign-"))
    run_dir = scratch / "run"
    hosts = [f"store:{scratch}/host-a", f"store:{scratch}/host-b"]
    print(
        f"campaign: {spec.total_tasks()} tasks over {len(hosts)} hosts "
        f"({', '.join(hosts)})"
    )

    # Mid-campaign elastic join: the moment the first shard launches,
    # append a third host to hosts.json — the supervisor polls it each
    # tick and registers the newcomer as a fresh slot.
    joined = {"done": False}

    def on_event(message: str) -> None:
        print(f"  orchestrator: {message}")
        if not joined["done"] and message.startswith("launched shard"):
            joined["done"] = True
            (run_dir / "hosts.json").write_text(
                json.dumps({"join": [f"store:{scratch}/host-c"]}),
                encoding="utf-8",
            )

    outcome = orchestrate_campaign(
        spec,
        run_dir=run_dir,
        hosts=hosts,
        poll_interval=0.1,
        steal_threshold=1,
        lease_batch=1,
        on_event=on_event,
        # Fault injection: host 0 is SIGKILLed at launch and vanishes;
        # its leases reclaim onto the live hosts.
        chaos_kill_host=0,
        chaos_kill_after=0,
    )

    print()
    print(outcome.result.render())
    print(
        f"hosts: {', '.join(outcome.hosts)}; "
        f"requeues survived: {outcome.requeues}; "
        f"leases stolen: {outcome.steals}; "
        f"merged stream: {outcome.merged_stream}"
    )
    for status in outcome.shards:
        print(
            f"  shard {status.index} [{status.host}]: {status.state}, "
            f"{status.recorded} task(s) recorded"
        )

    reference = run_campaign(spec, workers=2)
    identical = outcome.result.render() == reference.render()
    print(f"distributed aggregate == unsharded aggregate: {identical}")
    if not identical:
        raise SystemExit("distributed equivalence violated")
    if len(outcome.hosts) != 3:
        raise SystemExit("elastic join never registered")
    if not any(status.state == "lost" for status in outcome.shards):
        raise SystemExit("chaos host kill never landed")


if __name__ == "__main__":
    main()
