"""Cross-mobility suite: compare protocols across movement patterns.

The paper's Table 1 fixes the motion model to random waypoint, yet DTN
protocol rankings are notoriously mobility-sensitive: group mobility
concentrates contacts inside clusters, street grids funnel encounters
onto shared lanes, and Gauss-Markov removes RWP's sharp turns and
centre bias.  This script runs the ``cross-mobility`` suite at a
reduced effort — every protocol under every registered movement
pattern — and prints one delivery/latency/storage row per cell, so the
ranking flips are visible in a minute of wall-clock.

Run:
    python examples/cross_mobility_suite.py
"""

import dataclasses

from repro.experiments.campaign import run_campaign
from repro.experiments.common import Effort
from repro.experiments.suites import build_suite

#: Keep the demo fast: one replicate of short, light scenarios.
DEMO_EFFORT = Effort(runs=1, sim_time=120.0, message_count=20)


def main() -> None:
    spec = build_suite(
        "cross-mobility",
        seed=11,
        replicates=1,
        effort=DEMO_EFFORT,
        base_overrides={"n_nodes": 30, "active_nodes": 15},
    )
    # Trim the protocol set so the grid stays 4 x 2.
    spec = dataclasses.replace(spec, protocols=("glr", "epidemic"))

    print(
        f"suite {spec.name}: {len(spec.scenarios())} movement patterns x "
        f"{len(spec.protocols)} protocols ({spec.total_tasks()} simulations)"
    )
    print()

    result = run_campaign(spec)

    header = (
        f"{'mobility':>16} {'protocol':>9} {'ratio':>6} "
        f"{'latency_s':>9} {'avg_peak_storage':>16}"
    )
    print(header)
    print("-" * len(header))
    for (scenario_name, protocol), runs in result.metrics.items():
        mobility = scenario_name.split("mobility=")[-1]
        metrics = runs[0]
        latency = (
            f"{metrics.average_latency:.1f}"
            if metrics.average_latency is not None
            else "n/a"
        )
        print(
            f"{mobility:>16} {protocol:>9} {metrics.delivery_ratio:>6.2f} "
            f"{latency:>9} {metrics.average_peak_storage:>16.1f}"
        )

    print()
    print(
        "Expected shape: epidemic buys its delivery with 3-4x the"
        " storage under every motion pattern; clustered rpgm motion is"
        " the easiest regime for both, while the manhattan street grid"
        " hurts GLR's geometric greedy forwarding the most — exactly"
        " the mobility sensitivity the suite exists to expose."
    )


if __name__ == "__main__":
    main()
