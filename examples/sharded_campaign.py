"""Sharded campaign: split a sweep, stream metrics, merge, aggregate.

Demonstrates the campaign engine v2 multi-machine workflow end to end,
in one process:

1. define a campaign that sweeps a protocol-config axis (GLR with and
   without custody) jointly with a mobility axis;
2. run it twice as two *shards* — deterministic halves of the task
   set, each appending per-task metrics to its own JSONL stream (on a
   cluster, each shard would be a different machine running
   ``repro campaign --shard-index I --shard-count N --stream ...``);
3. merge the shard streams (``repro campaign merge``) and rebuild the
   aggregate summary purely from the merged stream
   (``repro campaign aggregate``);
4. verify the merged aggregate is byte-identical to an unsharded run.

Run:
    python examples/sharded_campaign.py
"""

import tempfile
from pathlib import Path

from repro.experiments import (
    CampaignSpec,
    ProtocolConfig,
    Scenario,
    campaign_result_from_stream,
    merge_streams,
    run_campaign,
)

SHARDS = 2


def main() -> None:
    base = Scenario(
        name="sharded",
        n_nodes=16,
        active_nodes=8,
        message_count=12,
        sim_time=120.0,
        seed=11,
    )
    spec = CampaignSpec(
        name="sharded",
        base=base,
        grid=(("mobility", ("random_waypoint", "gauss_markov")),),
        protocols=(
            ProtocolConfig.of("glr"),
            ProtocolConfig.of("glr", custody=False),
        ),
        replicates=2,
    )
    print(
        f"campaign: {len(spec.scenarios())} scenarios x "
        f"{len(spec.protocols)} protocol variants x "
        f"{spec.replicates} replicates = {spec.total_tasks()} tasks"
    )

    workdir = Path(tempfile.mkdtemp(prefix="sharded-campaign-"))
    shard_streams = []
    for index in range(SHARDS):
        stream = workdir / f"shard{index}.jsonl"
        shard_streams.append(stream)
        result = run_campaign(
            spec,
            workers=2,
            stream_path=stream,
            shard_index=index,
            shard_count=SHARDS,
        )
        ran = sum(len(runs) for runs in result.metrics.values())
        print(f"shard {index + 1}/{SHARDS}: {ran} tasks -> {stream.name}")

    merged = workdir / "merged.jsonl"
    info = merge_streams(merged, shard_streams)
    print(f"merged: {len(info.records)} task records -> {merged.name}")

    rebuilt = campaign_result_from_stream(merged)
    print()
    print(rebuilt.render())

    reference = run_campaign(spec, workers=2)
    identical = rebuilt.render() == reference.render()
    print(f"sharded+merged aggregate == unsharded aggregate: {identical}")
    if not identical:
        raise SystemExit("shard/merge equivalence violated")


if __name__ == "__main__":
    main()
