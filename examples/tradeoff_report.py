"""Trade-off report: from a campaign stream to Pareto frontiers.

Runs a small adversarial campaign (three protocols, honest vs
blackhole cells), streams it to a run directory, then drives the
analysis layer end to end: ingest the stream into a
:class:`~repro.analysis.store.ResultStore`, query it, and render the
markdown trade-off report — per-scenario Pareto frontiers over
(delivery ratio, latency, peak storage), bootstrap-CI protocol
rankings, and dominance/regret summaries.

The committed ``docs/example-report.md`` is this script's output
(``--out docs/example-report.md``); everything is seeded, so reruns
reproduce it byte-for-byte.

Run:
    python examples/tradeoff_report.py [--out report.md]
"""

import argparse
from pathlib import Path

from repro.analysis.report import generate_report
from repro.analysis.store import ResultStore
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.scenarios import Scenario


def build_spec() -> CampaignSpec:
    return CampaignSpec(
        name="tradeoff-demo",
        base=Scenario(
            name="tradeoff-demo",
            n_nodes=24,
            active_nodes=12,
            radius=140.0,
            message_count=12,
            sim_time=120.0,
            seed=11,
        ),
        grid=(("adversary", (None, "blackhole:0.25")),),
        protocols=("glr", "epidemic", "spray_and_wait"),
        replicates=3,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the markdown report here instead of stdout",
    )
    args = parser.parse_args()

    spec = build_spec()
    stream = Path("tradeoff-demo.jsonl")
    print(
        f"campaign {spec.name}: {spec.total_tasks()} simulations "
        f"-> {stream}"
    )
    run_campaign(spec, workers=4, stream_path=stream)

    store = ResultStore.open(stream)
    frontier_cells = store.select(adversary="blackhole")
    print(
        f"store: {len(store.records())} records, "
        f"{len(store.cells())} cells "
        f"({len(frontier_cells.cells)} under blackhole)"
    )

    document = generate_report(store)
    if args.out is not None:
        provenance = (
            "<!-- Sample output of `python examples/tradeoff_report.py"
            " --out docs/example-report.md` (seeded; reruns reproduce"
            " it byte-for-byte) -->\n"
        )
        args.out.write_text(provenance + document, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print()
        print(document, end="")


if __name__ == "__main__":
    main()
