"""Sparse-DTN campaign: sweep the radius and watch Algorithm 1 react.

This is the scenario class the paper's introduction motivates: nodes
too sparse for contemporaneous paths, where store-and-forward plus
controlled flooding must carry traffic.  The script sweeps the
transmission radius across the paper's range, reports the Algorithm 1
copy decision (driven by the Georgiou connectivity bound), and runs a
short GLR simulation per radius so the copy decision's effect on
storage and delivery is visible.

Run:
    python examples/sparse_dtn_campaign.py
"""

from repro import Scenario, decide_copies, run_single
from repro.graphs.connectivity import connectivity_confidence


def main() -> None:
    base = Scenario(
        name="campaign", message_count=60, sim_time=240.0, seed=11
    )
    area = base.area

    header = (
        f"{'radius_m':>8} {'P(conn)':>8} {'copies':>6} {'ratio':>6} "
        f"{'latency_s':>9} {'avg_peak_storage':>16}"
    )
    print("Algorithm 1 + GLR across the paper's radius sweep")
    print(f"({base.n_nodes} nodes, {area:.0f} m^2, "
          f"{base.message_count} messages, {base.sim_time:.0f} s)")
    print()
    print(header)
    print("-" * len(header))

    for radius in (50.0, 100.0, 150.0, 200.0, 250.0):
        confidence = connectivity_confidence(base.n_nodes, radius, area)
        decision = decide_copies(base.n_nodes, radius, area)
        metrics = run_single(base.but(radius=radius), "glr")
        latency = (
            f"{metrics.average_latency:.1f}"
            if metrics.average_latency is not None
            else "n/a"
        )
        print(
            f"{radius:>8.0f} {confidence:>8.2f} {decision.copies:>6} "
            f"{metrics.delivery_ratio:>6.2f} {latency:>9} "
            f"{metrics.average_peak_storage:>16.1f}"
        )

    print()
    print(
        "Expected: 3 copies below 150 m (unconnectable network), one"
        " copy at 150 m and above; latency and storage fall as the"
        " radius grows."
    )


if __name__ == "__main__":
    main()
