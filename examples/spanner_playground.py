"""Spanner playground: build and compare the geometric routing graphs.

Generates a static topology (paper Figure 1 style), builds the unit
disk graph, Gabriel graph, RNG and the paper's k-LDTG over it, and
prints the structural comparison: edge counts, planarity, connectivity
preservation, stretch factor, and a sample MaxDSTD/MinDSTD tree
extraction between the two most distant nodes (paper Figure 2 style).

Run:
    python examples/spanner_playground.py
"""

import itertools

from repro import Region
from repro.geometry.delaunay import stretch_factor
from repro.graphs.connectivity import connected_components
from repro.graphs.faces import is_planar_embedding
from repro.graphs.gabriel import gabriel_graph
from repro.graphs.ldt import local_delaunay_graph
from repro.graphs.rng import relative_neighborhood_graph
from repro.graphs.trees import Branch, extract_dstd_path
from repro.graphs.udg import unit_disk_graph
from repro.mobility.static import uniform_random_positions


def describe(name, graph):
    comps = len(connected_components(graph))
    planar = is_planar_embedding(graph)
    points = [graph.positions[n] for n in sorted(graph.positions)]
    index = {n: i for i, n in enumerate(sorted(graph.positions))}
    edges = {(index[u], index[v]) for u, v in graph.edges()}
    stretch = stretch_factor(points, {tuple(sorted(e)) for e in edges})
    stretch_text = f"{stretch:.2f}" if stretch != float("inf") else "inf"
    print(
        f"{name:<10} edges={graph.edge_count():>4} components={comps:>2} "
        f"planar={str(planar):<5} stretch={stretch_text}"
    )
    return graph


def main() -> None:
    region = Region(1000.0, 1000.0)
    nodes = list(range(50))
    positions = uniform_random_positions(nodes, region, seed=2)
    radius = 250.0  # paper Figure 1(a): mostly connected

    print(f"50 nodes in 1000x1000 m, radius {radius:.0f} m\n")
    describe("UDG", unit_disk_graph(positions, radius))
    describe("Gabriel", gabriel_graph(positions, radius))
    describe("RNG", relative_neighborhood_graph(positions, radius))
    ldt = describe("2-LDTG", local_delaunay_graph(positions, radius, k=2))

    # Paper Figure 2: extract Max/Min DSTD trees between distant nodes.
    source, dest = max(
        itertools.combinations(nodes, 2),
        key=lambda pair: positions[pair[0]].distance_to(positions[pair[1]]),
    )
    print(
        f"\nDSTD trees on the LDTG from node {source} to node {dest} "
        f"(distance "
        f"{positions[source].distance_to(positions[dest]):.0f} m):"
    )
    for branch in (Branch.MAX, Branch.MIN, Branch.MID):
        path = extract_dstd_path(ldt, source, dest, branch)
        arrived = "reached" if path[-1] == dest else "stopped"
        print(
            f"  {branch.value:<4} tree: {len(path) - 1:>2} hops, {arrived}"
            f"  {' -> '.join(str(n) for n in path[:8])}"
            f"{' ...' if len(path) > 8 else ''}"
        )

    print(
        "\nExpected: LDTG/Gabriel/RNG are planar and far sparser than"
        " the UDG while keeping its components connected; MaxDSTD takes"
        " fewer, longer hops than MinDSTD."
    )


if __name__ == "__main__":
    main()
