"""Custom protocol example: plug your own routing into the simulator.

Implements a tiny "geo-direct" protocol against the public Protocol
interface: forward to any radio neighbour strictly closer to the
destination's *true* position (cheating oracle), else wait.  It is
deliberately naive — the point is to show the full surface a protocol
implementor touches:

- ``start``         : schedule periodic work through ``api.periodic``
- ``on_message_created`` / ``on_frame``: the two event entry points
- ``api.send``      : transmit through the contention MAC
- storage hooks     : expose occupancy so the metrics pipeline works

Run:
    python examples/custom_protocol.py
"""

from repro import Scenario
from repro.experiments.runner import build_world
from repro.geometry.primitives import distance
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.sim.messages import (
    Frame,
    FrameKind,
    Message,
    MessageCopy,
    data_frame,
)
from repro.sim.storage import MessageStore
from repro.sim.world import Protocol, World, WorldConfig
from repro.sim.radio import RadioConfig
from repro.sim.mac import MacConfig


class GeoDirectProtocol(Protocol):
    """Greedy-on-UDG with an oracle destination position."""

    name = "geo_direct"

    def __init__(self):
        super().__init__()
        self.buffer = MessageStore()

    def start(self) -> None:
        assert self.api is not None
        self.api.periodic(1.0, self._route_round, jitter=0.05)

    def on_message_created(self, message: Message) -> None:
        self.buffer.add(message.uid, MessageCopy(message=message, branch="geo"))

    def on_frame(self, frame: Frame) -> None:
        assert self.api is not None
        if frame.kind is not FrameKind.DATA:
            return
        copy: MessageCopy = frame.payload
        copy = copy.hopped()
        if copy.message.dest == self.api.node_id:
            self.api.metrics.on_delivered(
                copy.message, self.api.now(), copy.hops
            )
            return
        if copy.message.uid not in self.buffer:
            self.buffer.add(copy.message.uid, copy)

    def _route_round(self) -> None:
        assert self.api is not None
        neighbors = self.api.neighbor_positions()
        if not neighbors:
            return
        my_pos = self.api.position()
        for uid in list(self.buffer.keys()):
            copy = self.buffer.get(uid)
            if not isinstance(copy, MessageCopy):
                continue
            dest = copy.message.dest
            if dest in neighbors:
                target = dest
            else:
                dest_pos = self.api.oracle_position_of(dest)
                closer = {
                    n: pos
                    for n, pos in neighbors.items()
                    if distance(pos, dest_pos) < distance(my_pos, dest_pos)
                }
                if not closer:
                    continue  # wait for mobility
                target = min(
                    closer, key=lambda n: distance(closer[n], dest_pos)
                )
            if self.api.send(data_frame(self.api.node_id, target, copy)):
                self.buffer.pop(uid)

    def storage_occupancy(self) -> int:
        return len(self.buffer)

    def storage_peak(self) -> int:
        return self.buffer.peak_occupancy

    def sample_storage(self, now: float) -> None:
        self.buffer.sample(now)

    def storage_time_average(self, horizon: float) -> float:
        return self.buffer.time_average_occupancy(horizon)


def main() -> None:
    scenario = Scenario(
        name="custom", radius=100.0, message_count=50, sim_time=240.0, seed=3
    )

    # Hand-assemble the world for the custom protocol...
    mobility = RandomWaypointMobility(
        list(range(scenario.n_nodes)),
        scenario.region,
        seed=scenario.seed,
        max_speed=scenario.max_speed,
    )
    world = World(
        mobility,
        lambda node: GeoDirectProtocol(),
        WorldConfig(
            radio=RadioConfig(range_m=scenario.radius),
            mac=MacConfig(queue_limit=scenario.queue_limit),
            seed=scenario.seed,
        ),
    )
    from repro.experiments.workload import generate_workload

    for spec in generate_workload(scenario):
        world.schedule_message(spec.source, spec.dest, spec.at_time)
    custom = world.run(until=scenario.sim_time, protocol_name="geo_direct")

    # ...and compare against the built-in GLR on the same scenario.
    glr_world = build_world(scenario, "glr")
    glr = glr_world.run(until=scenario.sim_time, protocol_name="glr")

    print(f"{'protocol':<12} {'ratio':>6} {'latency_s':>10} {'hops':>6}")
    for m in (custom, glr):
        latency = (
            f"{m.average_latency:.1f}" if m.average_latency else "n/a"
        )
        hops = f"{m.average_hops:.1f}" if m.average_hops else "n/a"
        print(f"{m.protocol:<12} {m.delivery_ratio:>6.2f} {latency:>10} {hops:>6}")

    print(
        "\nGeoDirect cheats with oracle positions yet lacks LDTG trees,"
        " multi-copy flooding, custody and face recovery — compare the"
        " delivery ratios to see what GLR's machinery buys."
    )


if __name__ == "__main__":
    main()
