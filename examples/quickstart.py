"""Quickstart: run GLR against epidemic routing in one paper scenario.

Builds the paper's Table 1 world at 100 m radius with a light message
load, runs both protocols on identical topology/mobility/workload
seeds, and prints the headline metrics side by side.

Run:
    python examples/quickstart.py
"""

from repro import Scenario, run_single


def main() -> None:
    scenario = Scenario(
        name="quickstart",
        radius=100.0,  # sparse enough that DTN behaviour matters
        message_count=80,
        sim_time=300.0,
        seed=7,
    )
    print(
        f"Scenario: {scenario.n_nodes} nodes, "
        f"{scenario.region.width:.0f}x{scenario.region.height:.0f} m, "
        f"radius {scenario.radius:.0f} m, "
        f"{scenario.message_count} messages, {scenario.sim_time:.0f} s"
    )
    print()

    header = (
        f"{'protocol':<10} {'delivered':>9} {'ratio':>6} "
        f"{'latency_s':>9} {'hops':>6} {'max_storage':>11}"
    )
    print(header)
    print("-" * len(header))
    for protocol in ("glr", "epidemic"):
        metrics = run_single(scenario, protocol)
        latency = (
            f"{metrics.average_latency:.1f}"
            if metrics.average_latency is not None
            else "n/a"
        )
        hops = (
            f"{metrics.average_hops:.1f}"
            if metrics.average_hops is not None
            else "n/a"
        )
        print(
            f"{protocol:<10} {metrics.messages_delivered:>9} "
            f"{metrics.delivery_ratio:>6.2f} {latency:>9} {hops:>6} "
            f"{metrics.max_peak_storage:>11}"
        )

    print()
    print(
        "Expected: both deliver ~everything; GLR uses more hops but a"
        " fraction of epidemic's storage."
    )


if __name__ == "__main__":
    main()
