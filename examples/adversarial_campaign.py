"""Adversarial campaign: how protocols degrade under Byzantine nodes.

The paper's evaluation assumes every node runs the protocol honestly.
This script sweeps the adversary axis — a rising fraction of nodes
compromised with each misbehaviour mode — against three protocols, and
prints one delivery row per (adversary, protocol) cell, so the
robustness ranking is visible in a minute of wall-clock.

Expected shape: a blackhole fraction hurts single-custody protocols
(glr, one_hop) roughly in proportion to how often the one custodian
hands its copy to a sink, while epidemic's redundancy soaks small
fractions and collapses only when sinks dominate the contact graph.
Location liars barely dent epidemic (it ignores coordinates) but
mislead geographic forwarding.

Run:
    python examples/adversarial_campaign.py
"""

from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.scenarios import Scenario

#: The honest anchor plus each mode at rising compromise fractions.
ADVERSARIES = (
    None,
    "blackhole:0.1",
    "blackhole:0.3",
    "selective_drop:0.3",
    "location_lying:0.3",
)


def main() -> None:
    spec = CampaignSpec(
        name="adversarial-demo",
        base=Scenario(
            name="adversarial-demo",
            n_nodes=30,
            active_nodes=15,
            message_count=30,
            sim_time=180.0,
            seed=11,
        ),
        grid=(("adversary", ADVERSARIES),),
        protocols=("glr", "epidemic", "one_hop"),
        replicates=2,
    )
    print(
        f"campaign {spec.name}: {len(ADVERSARIES)} adversary cells x "
        f"{len(spec.protocols)} protocols x {spec.replicates} replicates "
        f"({spec.total_tasks()} simulations)"
    )
    print()

    result = run_campaign(spec, workers=4)

    header = (
        f"{'adversary':>22} {'protocol':>9} {'ratio':>6} "
        f"{'latency_s':>9} {'frames':>8}"
    )
    print(header)
    print("-" * len(header))
    honest: dict[str, float] = {}
    for (scenario_name, protocol), summary in result.summaries().items():
        adversary = scenario_name.split("adversary=")[-1]
        ratio = summary.delivery_ratio.mean
        if adversary == "none":
            honest[protocol] = ratio
        latency = (
            f"{summary.average_latency.mean:.1f}"
            if summary.average_latency is not None
            else "n/a"
        )
        frames = sum(
            m.frames_sent for m in result.metrics[(scenario_name, protocol)]
        )
        print(
            f"{adversary:>22} {protocol:>9} {ratio:>6.2f} "
            f"{latency:>9} {frames:>8}"
        )

    print()
    worst = {
        protocol: min(
            summary.delivery_ratio.mean
            for (name, p), summary in result.summaries().items()
            if p == protocol
        )
        for protocol in ("glr", "epidemic", "one_hop")
    }
    for protocol, floor in worst.items():
        drop = honest[protocol] - floor
        print(
            f"{protocol}: honest {honest[protocol]:.2f}, worst cell "
            f"{floor:.2f} (drop {drop:+.2f})"
        )


if __name__ == "__main__":
    main()
