"""Legacy setup shim.

All project metadata lives in pyproject.toml.  This file exists only so
that offline environments whose setuptools lacks PEP 660 editable-wheel
support can still do ``pip install -e .`` (which falls back to
``setup.py develop`` when this file is present).
"""

from setuptools import setup

setup()
